// Calibration guards: the qualitative claims EXPERIMENTS.md makes about
// each benchmark's shape must keep holding as the simulator evolves.
// These run at small scale (the shapes are scale-stable, which
// bench_heapsize_ablation demonstrates for heap size and the paper asserts
// for workload size).
#include <gtest/gtest.h>

#include "core/coprocessor.hpp"
#include "workloads/benchmarks.hpp"

namespace hwgc {
namespace {

double speedup(BenchmarkId id, std::uint32_t cores, double scale = 0.05) {
  Workload base = make_benchmark(id, scale);
  SimConfig cfg;
  cfg.coprocessor.num_cores = 1;
  Coprocessor c1(cfg, *base.heap);
  const double seq = static_cast<double>(c1.collect().total_cycles);

  Workload par = make_benchmark(id, scale);
  cfg.coprocessor.num_cores = cores;
  Coprocessor cn(cfg, *par.heap);
  return seq / static_cast<double>(cn.collect().total_cycles);
}

TEST(Calibration, ParallelRichBenchmarksScaleTo8Cores) {
  // Paper Figure 5: up to 7.4x at 8 cores.
  EXPECT_GT(speedup(BenchmarkId::kDb, 8), 6.5);
  EXPECT_GT(speedup(BenchmarkId::kJavacc, 8), 6.5);
  EXPECT_GT(speedup(BenchmarkId::kJflex, 8), 6.5);
}

TEST(Calibration, ParallelRichBenchmarksScaleTo16Cores) {
  // Paper Figure 5: up to 12.1x at 16 cores.
  EXPECT_GT(speedup(BenchmarkId::kDb, 16), 10.0);
  EXPECT_GT(speedup(BenchmarkId::kJavacc, 16), 10.0);
}

TEST(Calibration, CompressPlateausEarly) {
  const double at4 = speedup(BenchmarkId::kCompress, 4);
  const double at16 = speedup(BenchmarkId::kCompress, 16);
  EXPECT_LT(at16, 4.0) << "compress must not scale (linear graph)";
  EXPECT_LT(at16 - at4, 0.5) << "compress must be flat beyond 4 cores";
}

TEST(Calibration, SearchBarelyScales) {
  EXPECT_LT(speedup(BenchmarkId::kSearch, 16), 2.2);
}

TEST(Calibration, JavacScalesWorstAmongParallelRich) {
  // Header-lock contention must cost javac visibly against db.
  const double javac = speedup(BenchmarkId::kJavac, 16);
  const double db = speedup(BenchmarkId::kDb, 16);
  EXPECT_GT(javac, 7.0) << "javac still scales reasonably (paper)";
  EXPECT_LT(javac, db - 1.0) << "but pays for its hot hubs";
}

TEST(Calibration, Figure6LatencyImprovesEveryParallelBenchmark) {
  for (BenchmarkId id : {BenchmarkId::kDb, BenchmarkId::kJavacc}) {
    Workload b1 = make_benchmark(id, 0.05);
    Workload b16 = make_benchmark(id, 0.05);
    SimConfig cfg;
    cfg.memory.latency += 20;
    cfg.memory.header_latency += 20;
    cfg.coprocessor.num_cores = 1;
    Coprocessor c1(cfg, *b1.heap);
    const double seq = static_cast<double>(c1.collect().total_cycles);
    cfg.coprocessor.num_cores = 16;
    Coprocessor cn(cfg, *b16.heap);
    const double sp = seq / static_cast<double>(cn.collect().total_cycles);
    EXPECT_GT(sp, speedup(id, 16) + 1.0) << benchmark_name(id);
  }
}

TEST(Calibration, TotalsOrderingMatchesPaper) {
  // Paper Table II "Total" @16 cores orders the workloads (searchA ≈
  // compress at the top ... jlisp tiny at the bottom). Check the robust
  // parts of that ordering.
  auto total = [&](BenchmarkId id) {
    Workload w = make_benchmark(id, 0.05);
    SimConfig cfg;
    cfg.coprocessor.num_cores = 16;
    Coprocessor c(cfg, *w.heap);
    return c.collect().total_cycles;
  };
  const Cycle search = total(BenchmarkId::kSearch);
  const Cycle compress = total(BenchmarkId::kCompress);
  const Cycle javac = total(BenchmarkId::kJavac);
  const Cycle javacc = total(BenchmarkId::kJavacc);
  const Cycle jlisp = total(BenchmarkId::kJlisp);
  EXPECT_GT(search, javac);
  EXPECT_GT(compress, javacc);
  EXPECT_GT(javac, javacc);
  EXPECT_LT(jlisp, javacc / 4);
}

}  // namespace
}  // namespace hwgc
