// Shard checkpoints (service/checkpoint.hpp): deterministic capture of a
// shard's full recovery state — heap image, root namespace, shadow-mutator
// graph (with its RNG), session affinity — sealed by an integrity digest.
// The contract under test:
//   * capture → restore → capture round-trips bit-identically (equal
//     digests, equal heap words);
//   * a restored shard REPLAYS deterministically: the same request steps
//     produce the same state as the first time they ran;
//   * a tampered checkpoint is refused (restore_into returns false and
//     leaves the target untouched) — a restore must never smuggle
//     corruption past the oracle.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "runtime/runtime.hpp"
#include "service/checkpoint.hpp"
#include "sim/config.hpp"
#include "workloads/mutator.hpp"

namespace hwgc {
namespace {

SimConfig sim_config() {
  SimConfig cfg;
  cfg.coprocessor.num_cores = 2;
  return cfg;
}

ShadowMutator::Config mutator_config() {
  ShadowMutator::Config m;
  m.seed = 42;
  m.target_live = 64;
  return m;
}

void churn(Runtime& rt, ShadowMutator& m, int steps) {
  for (int i = 0; i < steps; ++i) m.step(rt);
}

TEST(Checkpoint, CaptureIsSelfConsistent) {
  Runtime rt(4096, sim_config());
  ShadowMutator m(mutator_config());
  churn(rt, m, 200);
  const ShardCheckpoint cp = ShardCheckpoint::capture(3, 16, rt, m, 0);
  EXPECT_TRUE(cp.verify());
  EXPECT_EQ(cp.shard, 3u);
  EXPECT_EQ(cp.sessions, 16u);
  EXPECT_EQ(cp.digest, cp.compute_digest());
}

TEST(Checkpoint, RestoreRoundTripsBitIdentically) {
  Runtime rt(4096, sim_config());
  ShadowMutator m(mutator_config());
  churn(rt, m, 300);
  rt.collect();
  const ShardCheckpoint cp = ShardCheckpoint::capture(0, 8, rt, m, 1);

  // Diverge hard: more churn, another collection.
  churn(rt, m, 400);
  rt.collect();
  const ShardCheckpoint diverged = ShardCheckpoint::capture(0, 8, rt, m, 2);
  EXPECT_NE(diverged.digest, cp.digest)
      << "distinct states must not collide in the digest";

  ASSERT_TRUE(cp.restore_into(rt, m));
  const ShardCheckpoint again = ShardCheckpoint::capture(0, 8, rt, m, 1);
  EXPECT_EQ(again.digest, cp.digest);
  EXPECT_EQ(again.runtime.words, cp.runtime.words);
  EXPECT_EQ(again.runtime.roots, cp.runtime.roots);
  EXPECT_EQ(again.runtime.alloc, cp.runtime.alloc);
  EXPECT_EQ(again.mutator.live, cp.mutator.live);
  EXPECT_EQ(again.mutator.allocations, cp.mutator.allocations);
  // The restored shard is internally consistent: shadow agrees with heap.
  EXPECT_EQ(m.validate(rt), 0u);
}

TEST(Checkpoint, RestoredShardReplaysDeterministically) {
  // Run A: checkpoint, then K more steps -> image1. Restore, run the SAME
  // K steps -> image2. The mutator RNG is part of the checkpoint, so the
  // two futures must be bit-identical — this is what makes a quarantine
  // restore invisible to determinism tests.
  Runtime rt(4096, sim_config());
  ShadowMutator m(mutator_config());
  churn(rt, m, 250);
  const ShardCheckpoint cp = ShardCheckpoint::capture(1, 8, rt, m, 0);

  churn(rt, m, 150);
  const Runtime::Image first = rt.save_image();
  const ShadowMutator::Image first_shadow = m.save_image();

  ASSERT_TRUE(cp.restore_into(rt, m));
  churn(rt, m, 150);
  const Runtime::Image second = rt.save_image();
  const ShadowMutator::Image second_shadow = m.save_image();

  EXPECT_EQ(first.words, second.words);
  EXPECT_EQ(first.roots, second.roots);
  EXPECT_EQ(first.alloc, second.alloc);
  EXPECT_EQ(first.base, second.base);
  EXPECT_EQ(first_shadow.rng, second_shadow.rng);
  EXPECT_EQ(first_shadow.live, second_shadow.live);
  EXPECT_EQ(first_shadow.allocations, second_shadow.allocations);
}

TEST(Checkpoint, RestoreAcrossSemispaceFlip) {
  // A collection flips the active semispace; a checkpoint taken before the
  // flip must still restore cleanly after it (restore_image flips back).
  Runtime rt(4096, sim_config());
  ShadowMutator m(mutator_config());
  churn(rt, m, 300);
  const ShardCheckpoint cp = ShardCheckpoint::capture(0, 8, rt, m, 0);
  const Addr base_at_capture = cp.runtime.base;

  rt.collect();  // flip
  churn(rt, m, 100);

  ASSERT_TRUE(cp.restore_into(rt, m));
  const ShardCheckpoint again = ShardCheckpoint::capture(0, 8, rt, m, 0);
  EXPECT_EQ(again.runtime.base, base_at_capture);
  EXPECT_EQ(again.digest, cp.digest);
  EXPECT_EQ(m.validate(rt), 0u);
}

TEST(Checkpoint, TamperedHeapWordRefused) {
  Runtime rt(4096, sim_config());
  ShadowMutator m(mutator_config());
  churn(rt, m, 200);
  ShardCheckpoint cp = ShardCheckpoint::capture(0, 8, rt, m, 0);
  ASSERT_FALSE(cp.runtime.words.empty());

  churn(rt, m, 50);
  const Runtime::Image before = rt.save_image();
  const ShadowMutator::Image before_shadow = m.save_image();

  cp.runtime.words[cp.runtime.words.size() / 2] ^= 0x40;
  EXPECT_FALSE(cp.verify());
  EXPECT_FALSE(cp.restore_into(rt, m))
      << "a checkpoint failing its digest must be refused";

  // Refusal means untouched: the live shard state did not move.
  const Runtime::Image after = rt.save_image();
  EXPECT_EQ(before.words, after.words);
  EXPECT_EQ(before.roots, after.roots);
  EXPECT_EQ(before_shadow.rng, m.save_image().rng);
}

TEST(Checkpoint, TamperedMetadataRefused) {
  Runtime rt(4096, sim_config());
  ShadowMutator m(mutator_config());
  churn(rt, m, 100);

  ShardCheckpoint a = ShardCheckpoint::capture(0, 8, rt, m, 0);
  a.sessions = 9;  // session affinity is covered by the digest
  EXPECT_FALSE(a.verify());
  EXPECT_FALSE(a.restore_into(rt, m));

  ShardCheckpoint b = ShardCheckpoint::capture(0, 8, rt, m, 0);
  b.mutator.allocations += 1;  // shadow-graph bookkeeping too
  EXPECT_FALSE(b.verify());
  EXPECT_FALSE(b.restore_into(rt, m));

  ShardCheckpoint c = ShardCheckpoint::capture(0, 8, rt, m, 0);
  ASSERT_FALSE(c.runtime.roots.empty());
  c.runtime.roots[0] ^= 1;  // and the root namespace
  EXPECT_FALSE(c.verify());
  EXPECT_FALSE(c.restore_into(rt, m));
}

}  // namespace
}  // namespace hwgc
