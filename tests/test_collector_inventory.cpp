// Collector inventory drift guard: README.md and DESIGN.md both carry a
// marker-delimited per-collector traits table. This suite generates the
// expected table from the live inventory (all_collectors() / traits_of())
// and compares the committed docs byte-for-byte, so adding a collector —
// or changing what one guarantees — fails the build until the docs follow.
// Regenerate in place with
//   HWGC_REGEN_GOLDEN=1 ./tests/test_collector_inventory
// The prose guard goes further: any "<number-word> collector(s)" phrase in
// either document must name the enum's actual count, which is how the old
// "seven collectors" drift (pre-kSnapshot) stays fixed.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>

#include "conformance/harness.hpp"

namespace hwgc {
namespace {

constexpr char kBegin[] = "<!-- collector-inventory:begin -->";
constexpr char kEnd[] = "<!-- collector-inventory:end -->";

const char* yn(bool b) { return b ? "yes" : "—"; }

std::string expected_table() {
  std::ostringstream os;
  os << "| collector | threaded | concurrent mutator | deterministic | "
        "dense | cheney order | preserves image |\n"
     << "|---|---|---|---|---|---|---|\n";
  for (CollectorId id : all_collectors()) {
    const CollectorTraits t = traits_of(id);
    os << "| `" << to_string(id) << "` | " << yn(t.threaded) << " | "
       << yn(t.concurrent_mutator) << " | " << yn(t.deterministic) << " | "
       << yn(t.dense) << " | " << yn(t.cheney_order) << " | "
       << yn(t.preserves_image) << " |\n";
  }
  return os.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path << " unreadable";
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void check_inventory_table(const std::string& path) {
  std::string text = read_file(path);
  const std::size_t b = text.find(kBegin);
  const std::size_t e = text.find(kEnd);
  ASSERT_NE(b, std::string::npos) << path << ": missing " << kBegin;
  ASSERT_NE(e, std::string::npos) << path << ": missing " << kEnd;
  ASSERT_LT(b, e) << path << ": inventory markers out of order";

  const std::string want =
      std::string(kBegin) + "\n" + expected_table() + kEnd;
  std::string got = text.substr(b, e + std::strlen(kEnd) - b);
  if (got != want && std::getenv("HWGC_REGEN_GOLDEN") != nullptr) {
    text = text.substr(0, b) + want + text.substr(e + std::strlen(kEnd));
    std::ofstream out(path, std::ios::binary);
    out << text;
    ASSERT_TRUE(out.good()) << "failed to regenerate " << path;
    got = want;
  }
  EXPECT_EQ(got, want)
      << path << ": collector inventory table drifted from the code; "
      << "regenerate with HWGC_REGEN_GOLDEN=1 ./tests/test_collector_inventory";
}

void check_prose_counts(const std::string& path) {
  // Index 0 == "six": the inventory had six collectors before the guard
  // existed and number words below that never named the collector count.
  const char* words[] = {"six",  "seven", "eight",  "nine",
                         "ten",  "eleven", "twelve"};
  ASSERT_GE(kCollectorCount, 6u) << "extend the number-word table";
  ASSERT_LE(kCollectorCount, 12u) << "extend the number-word table";
  const std::string expect = words[kCollectorCount - 6];

  const std::string text = read_file(path);
  const std::regex phrase(
      "(six|seven|eight|nine|ten|eleven|twelve)[ -][Cc]ollector",
      std::regex_constants::icase);
  for (auto it = std::sregex_iterator(text.begin(), text.end(), phrase);
       it != std::sregex_iterator(); ++it) {
    std::string word = (*it)[1].str();
    for (char& ch : word) ch = static_cast<char>(std::tolower(ch));
    EXPECT_EQ(word, expect)
        << path << ": stale collector count in phrase '" << it->str()
        << "' — the enum has " << kCollectorCount << " collectors";
  }
}

TEST(CollectorInventory, ReadmeTableMatchesTheCode) {
  check_inventory_table(std::string(HWGC_REPO_DIR) + "/README.md");
}

TEST(CollectorInventory, DesignTableMatchesTheCode) {
  check_inventory_table(std::string(HWGC_REPO_DIR) + "/DESIGN.md");
}

TEST(CollectorInventory, ReadmeProseCountsMatchTheEnum) {
  check_prose_counts(std::string(HWGC_REPO_DIR) + "/README.md");
}

TEST(CollectorInventory, DesignProseCountsMatchTheEnum) {
  check_prose_counts(std::string(HWGC_REPO_DIR) + "/DESIGN.md");
}

}  // namespace
}  // namespace hwgc
