// Concurrent collection (Section V-B's "next step"): the mutator keeps
// running through the hardware read barrier while the coprocessor
// collects. Its shadow model must agree with the heap afterwards, over a
// sweep of seeds, core counts and workload shapes.
#include <gtest/gtest.h>

#include "core/concurrent_cycle.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/random_graph.hpp"

namespace hwgc {
namespace {

ConcurrentCycle::Config config(std::uint32_t cores, std::uint64_t seed,
                               std::uint32_t spacing = 2) {
  ConcurrentCycle::Config cfg;
  cfg.sim.coprocessor.num_cores = cores;
  cfg.mutator_seed = seed;
  cfg.op_spacing = spacing;
  return cfg;
}

TEST(Concurrent, MutatorRunsDuringCollection) {
  Workload w = make_benchmark(BenchmarkId::kDb, 0.05);
  ConcurrentCycle cycle(config(8, 3), *w.heap);
  const ConcurrentStats s = cycle.run();
  EXPECT_GT(s.mutator_ops, 100u) << "mutator must have made real progress";
  EXPECT_GT(s.gc.objects_copied, 0u);
  EXPECT_EQ(s.validation_mismatches, 0u);
  EXPECT_TRUE(s.gc.lock_order_violations.empty());
}

TEST(Concurrent, ReadBarrierIsExercised) {
  // Slow collection (1 core) + eager mutator: plenty of gray windows.
  Workload w = make_benchmark(BenchmarkId::kJavacc, 0.05);
  ConcurrentCycle cycle(config(1, 5, /*spacing=*/1), *w.heap);
  const ConcurrentStats s = cycle.run();
  EXPECT_GT(s.barrier_gray_reads, 0u)
      << "the mutator should have read gray objects via their backlinks";
  EXPECT_EQ(s.validation_mismatches, 0u);
}

TEST(Concurrent, MutatorAllocatesBlackDuringCycle) {
  Workload w = make_benchmark(BenchmarkId::kJavacc, 0.05);
  ConcurrentCycle cycle(config(4, 7, 1), *w.heap);
  const ConcurrentStats s = cycle.run();
  EXPECT_GT(s.mutator_allocations, 0u);
  EXPECT_EQ(s.validation_mismatches, 0u);
}

TEST(Concurrent, PauseIsBoundedByBarrierWorkNotCycleLength) {
  // The concurrent collector's selling point: the mutator's longest pause
  // must be orders of magnitude below the cycle duration.
  Workload w = make_benchmark(BenchmarkId::kDb, 0.1);
  ConcurrentCycle cycle(config(8, 11), *w.heap);
  const ConcurrentStats s = cycle.run();
  EXPECT_GT(s.gc.total_cycles, 10'000u);
  EXPECT_LT(s.longest_pause, 500u)
      << "a barrier operation must never stall the mutator for a "
         "significant fraction of the cycle";
}

class ConcurrentSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>> {
};

TEST_P(ConcurrentSweep, ShadowAgreesWithHeap) {
  const auto [seed, cores] = GetParam();
  Workload w = materialize(make_random_plan(seed, {.nodes = 600}));
  ConcurrentCycle cycle(config(cores, seed * 31 + 1, 1), *w.heap);
  const ConcurrentStats s = cycle.run();
  EXPECT_EQ(s.validation_mismatches, 0u)
      << "seed=" << seed << " cores=" << cores;
  EXPECT_TRUE(s.gc.lock_order_violations.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConcurrentSweep,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 13),
                       ::testing::Values(1u, 2u, 4u, 8u, 16u)),
    [](const auto& param_info) {
      return "seed" + std::to_string(std::get<0>(param_info.param)) +
             "_cores" + std::to_string(std::get<1>(param_info.param));
    });

TEST(Concurrent, TightHeapBacksOffInsteadOfCorrupting) {
  // A heap with barely any headroom (factor 1.2 over the live set) and an
  // allocation-eager mutator: admission control must refuse allocations
  // rather than let the top region collide with the evacuation region.
  const GraphPlan plan = make_benchmark_plan(BenchmarkId::kJavacc, 0.05);
  Workload w = materialize(plan, /*heap_factor=*/1.2);
  ConcurrentCycle cycle(config(2, 19, /*spacing=*/1), *w.heap);
  const ConcurrentStats s = cycle.run();
  EXPECT_GT(s.mutator_alloc_backoffs, 0u)
      << "the tight heap should have forced allocation backoffs";
  EXPECT_EQ(s.validation_mismatches, 0u);
}

TEST(Concurrent, ComposesWithExtensions) {
  Workload w = make_benchmark(BenchmarkId::kCompress, 0.02);
  ConcurrentCycle::Config cfg = config(8, 13, 1);
  cfg.sim.coprocessor.subobject_copy = true;
  cfg.sim.coprocessor.markbit_early_read = true;
  cfg.sim.memory.header_cache_entries = 1024;
  ConcurrentCycle cycle(cfg, *w.heap);
  const ConcurrentStats s = cycle.run();
  EXPECT_EQ(s.validation_mismatches, 0u);
  EXPECT_TRUE(s.gc.lock_order_violations.empty());
}

}  // namespace
}  // namespace hwgc
