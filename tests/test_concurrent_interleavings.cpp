// Concurrent-cycle mutator interleavings, oracle-verified at 1, 2 and 8
// GC cores: the three barrier mechanisms — barrier-assisted evacuation
// (the mutator copies an object itself on a gray read), the write-to-gray
// dual store, and Baker-style bump-down allocation — must each actually
// fire during the sweep, and every cycle they fire in must still pass the
// conformance oracle (shadow graph intact, evacuated subset dense and
// injective, roots redirected).
#include <gtest/gtest.h>

#include "conformance/conformance.hpp"
#include "conformance/harness.hpp"
#include "workloads/random_graph.hpp"

namespace hwgc {
namespace {

struct SweepTotals {
  std::uint64_t gray_reads = 0;
  std::uint64_t evacuations = 0;
  std::uint64_t dual_writes = 0;
  std::uint64_t allocations = 0;
  std::uint64_t alloc_backoffs = 0;
  std::uint64_t mutator_ops = 0;
};

/// Runs a seed sweep at `cores` and verifies every cycle; returns the
/// accumulated barrier counters so callers can assert coverage.
SweepTotals sweep(std::uint32_t cores) {
  SweepTotals totals;
  for (std::uint64_t seed : {11ull, 12ull, 13ull, 14ull, 15ull, 16ull}) {
    RandomGraphConfig g;
    g.nodes = 220;  // long enough cycles for the mutator to interleave
    ConformanceCase c;
    c.plan = make_random_plan(seed, g);
    c.harness.threads = cores;
    c.harness.mutator_seed = seed * 31 + cores;
    c.harness.mutator_op_spacing = 1;  // an operation every cycle
    const ConformanceVerdict v = run_conformance_case(CollectorId::kConcurrent, c);
    EXPECT_TRUE(v.ok) << "cores=" << cores << " seed=" << seed << ": "
                      << v.summary();
    if (!v.report.concurrent.has_value()) {
      ADD_FAILURE() << "concurrent payload missing for seed " << seed;
      continue;
    }
    const ConcurrentStats& s = *v.report.concurrent;
    EXPECT_EQ(s.validation_mismatches, 0u);
    totals.gray_reads += s.barrier_gray_reads;
    totals.evacuations += s.barrier_evacuations;
    totals.dual_writes += s.barrier_dual_writes;
    totals.allocations += s.mutator_allocations;
    totals.alloc_backoffs += s.mutator_alloc_backoffs;
    totals.mutator_ops += s.mutator_ops;
  }
  return totals;
}

class InterleavingSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(InterleavingSweep, AllThreeBarrierMechanismsFireAndVerify) {
  const SweepTotals t = sweep(GetParam());
  // The mutator must actually have run against the collector...
  EXPECT_GT(t.mutator_ops, 0u);
  // ...and each mechanism must have been exercised somewhere in the sweep:
  // reads redirected through gray backlinks, at least one of which found a
  // fromspace pointer and evacuated it from the mutator's side,
  EXPECT_GT(t.gray_reads, 0u);
  EXPECT_GT(t.evacuations, 0u);
  // stores to gray objects dual-written to frame and original,
  EXPECT_GT(t.dual_writes, 0u);
  // and Baker bump-down allocations born black during the cycle.
  EXPECT_GT(t.allocations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Cores, InterleavingSweep,
                         ::testing::Values(1u, 2u, 8u),
                         [](const ::testing::TestParamInfo<std::uint32_t>& i) {
                           return "cores" + std::to_string(i.param);
                         });

TEST(Interleavings, MoreCoresShortenThePauseStory) {
  // Not a performance test — a sanity check that the sweep's pause metric
  // is being recorded at all widths (the paper's concurrent headline).
  for (std::uint32_t cores : {1u, 2u, 8u}) {
    RandomGraphConfig g;
    g.nodes = 150;
    ConformanceCase c;
    c.plan = make_random_plan(77, g);
    c.harness.threads = cores;
    c.harness.mutator_op_spacing = 1;
    const ConformanceVerdict v =
        run_conformance_case(CollectorId::kConcurrent, c);
    ASSERT_TRUE(v.ok) << v.summary();
    ASSERT_TRUE(v.report.concurrent.has_value());
    EXPECT_LT(v.report.concurrent->longest_pause,
              v.report.concurrent->gc.total_cycles);
  }
}

}  // namespace
}  // namespace hwgc
