// Exhaustive configuration matrix: every combination of the optional
// hardware features must preserve the collector invariants on
// representative workloads at several core counts. This is the guard
// against feature interactions (e.g. striping x FIFO-off x early-read).
#include <gtest/gtest.h>

#include "core/coprocessor.hpp"
#include "heap/verifier.hpp"
#include "workloads/benchmarks.hpp"

namespace hwgc {
namespace {

struct MatrixCase {
  bool fifo;
  bool early_read;
  bool subobject;
  bool header_cache;
  std::uint32_t cores;
};

class ConfigMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ConfigMatrix, InvariantsHoldOnEveryConfiguration) {
  const MatrixCase& mc = GetParam();
  SimConfig cfg;
  cfg.coprocessor.num_cores = mc.cores;
  cfg.coprocessor.header_fifo_capacity = mc.fifo ? 32768 : 0;
  cfg.coprocessor.markbit_early_read = mc.early_read;
  cfg.coprocessor.subobject_copy = mc.subobject;
  cfg.coprocessor.stripe_threshold = 16;  // stripe aggressively when on
  cfg.memory.header_cache_entries = mc.header_cache ? 512 : 0;

  for (BenchmarkId id : {BenchmarkId::kJavac, BenchmarkId::kCompress,
                         BenchmarkId::kJlisp}) {
    Workload w = make_benchmark(id, 0.01);
    const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);
    Coprocessor coproc(cfg, *w.heap);
    const GcCycleStats s = coproc.collect();
    EXPECT_EQ(s.objects_copied, pre.objects.size()) << benchmark_name(id);
    EXPECT_TRUE(s.lock_order_violations.empty()) << benchmark_name(id);
    const VerifyResult res = verify_collection(pre, *w.heap);
    EXPECT_TRUE(res.ok) << benchmark_name(id) << ": " << res.summary();
  }
}

std::vector<MatrixCase> all_configurations() {
  std::vector<MatrixCase> cases;
  for (bool fifo : {false, true}) {
    for (bool early : {false, true}) {
      for (bool sub : {false, true}) {
        for (bool cache : {false, true}) {
          for (std::uint32_t cores : {1u, 4u, 16u}) {
            cases.push_back({fifo, early, sub, cache, cores});
          }
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllFeatureCombinations, ConfigMatrix,
    ::testing::ValuesIn(all_configurations()),
    [](const auto& param_info) {
      const MatrixCase& mc = param_info.param;
      std::string name;
      name += mc.fifo ? "fifo_" : "nofifo_";
      name += mc.early_read ? "early_" : "lock_";
      name += mc.subobject ? "stripe_" : "whole_";
      name += mc.header_cache ? "cache_" : "nocache_";
      name += "c" + std::to_string(mc.cores);
      return name;
    });

// Determinism must also hold with every feature enabled at once.
TEST(ConfigMatrix, FullyLoadedConfigIsDeterministic) {
  SimConfig cfg;
  cfg.coprocessor.num_cores = 16;
  cfg.coprocessor.markbit_early_read = true;
  cfg.coprocessor.subobject_copy = true;
  cfg.memory.header_cache_entries = 1024;
  Workload w1 = make_benchmark(BenchmarkId::kDb, 0.02);
  Workload w2 = make_benchmark(BenchmarkId::kDb, 0.02);
  Coprocessor c1(cfg, *w1.heap);
  Coprocessor c2(cfg, *w2.heap);
  const GcCycleStats s1 = c1.collect();
  const GcCycleStats s2 = c2.collect();
  EXPECT_EQ(s1.total_cycles, s2.total_cycles);
  EXPECT_EQ(s1.mem_requests, s2.mem_requests);
}

}  // namespace
}  // namespace hwgc
