// Cross-collector conformance matrix: every collector in the repository,
// over a shared random-graph corpus, through the property oracle of
// src/conformance/conformance.hpp. 240 configurations in total — six
// stop-the-world collectors x 8 graph seeds x 4 thread counts, plus the
// concurrent cycle x 8 seeds x 3 core counts, plus the pauseless snapshot
// collector x 8 seeds x 3 worker counts (with real mutator threads racing
// each cycle).
#include <gtest/gtest.h>

#include <sstream>

#include "conformance/conformance.hpp"
#include "conformance/harness.hpp"
#include "workloads/random_graph.hpp"

namespace hwgc {
namespace {

TEST(Harness, NamesRoundTrip) {
  const auto ids = all_collectors();
  ASSERT_EQ(ids.size(), kCollectorCount);
  ASSERT_EQ(kCollectorCount, 8u);
  for (CollectorId id : ids) {
    const auto parsed = parse_collector(to_string(id));
    ASSERT_TRUE(parsed.has_value()) << to_string(id);
    EXPECT_EQ(*parsed, id);
  }
  EXPECT_FALSE(parse_collector("no-such-collector").has_value());
  EXPECT_FALSE(parse_collector("").has_value());
}

TEST(Harness, TraitsMatchCollectorContracts) {
  EXPECT_TRUE(traits_of(CollectorId::kSequential).cheney_order);
  EXPECT_TRUE(traits_of(CollectorId::kSequential).dense);
  EXPECT_TRUE(traits_of(CollectorId::kCoprocessor).dense);
  EXPECT_TRUE(traits_of(CollectorId::kCoprocessor).deterministic);
  EXPECT_TRUE(traits_of(CollectorId::kNaive).dense);
  EXPECT_TRUE(traits_of(CollectorId::kPackets).dense);
  EXPECT_FALSE(traits_of(CollectorId::kChunked).dense);
  EXPECT_FALSE(traits_of(CollectorId::kStealing).dense);
  EXPECT_FALSE(traits_of(CollectorId::kConcurrent).preserves_image);
  EXPECT_TRUE(traits_of(CollectorId::kSnapshot).concurrent_mutator);
  EXPECT_TRUE(traits_of(CollectorId::kSnapshot).threaded);
  EXPECT_TRUE(traits_of(CollectorId::kSnapshot).dense);
  for (CollectorId id : all_collectors()) {
    const CollectorTraits t = traits_of(id);
    // Only single-threaded collectors can promise Cheney order or
    // counter determinism; the threaded ones run real preemptible
    // std::threads.
    if (t.cheney_order) {
      EXPECT_FALSE(t.threaded) << to_string(id);
    }
    if (t.threaded) {
      EXPECT_FALSE(t.deterministic) << to_string(id);
    }
    // Mutators racing the cycle preclude an isomorphic image.
    if (t.concurrent_mutator) {
      EXPECT_FALSE(t.preserves_image) << to_string(id);
      EXPECT_TRUE(t.threaded) << to_string(id);
    }
  }
}

TEST(Harness, FactoryBuildsEveryCollector) {
  for (CollectorId id : all_collectors()) {
    const auto h = make_harness(id);
    ASSERT_NE(h, nullptr) << to_string(id);
    EXPECT_EQ(h->id(), id);
    EXPECT_STREQ(h->name(), to_string(id));
  }
}

TEST(Harness, ReportCarriesFamilyPayload) {
  RandomGraphConfig g;
  g.nodes = 40;
  ConformanceCase c;
  c.plan = make_random_plan(3, g);
  Workload w = materialize(c.plan, 2.0);
  const CycleReport r = make_harness(CollectorId::kStealing)->collect(*w.heap);
  ASSERT_TRUE(r.parallel.has_value());
  EXPECT_FALSE(r.coproc || r.sequential || r.concurrent);
  EXPECT_EQ(r.parallel->objects_copied, r.objects_copied);
  EXPECT_GT(r.sync_ops, 0u);
}

struct MatrixParam {
  CollectorId id;
  std::uint64_t seed;
  std::uint32_t threads;
};

std::string matrix_name(const ::testing::TestParamInfo<MatrixParam>& info) {
  std::ostringstream os;
  os << to_string(info.param.id) << "_s" << info.param.seed << "_t"
     << info.param.threads;
  return os.str();
}

class ConformanceMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(ConformanceMatrix, CollectorPassesOracle) {
  const MatrixParam p = GetParam();
  RandomGraphConfig g;
  g.nodes = 120;
  ConformanceCase c;
  c.plan = make_random_plan(p.seed, g);
  c.harness.threads = p.threads;
  c.harness.schedule_seed = p.seed;
  c.harness.mutator_seed = p.seed;
  const ConformanceVerdict v = run_conformance_case(p.id, c);
  EXPECT_TRUE(v.ok) << v.summary();
  EXPECT_GT(v.live_objects, 0u);
  EXPECT_EQ(v.report.objects_copied, v.report.evacuations);
}

std::vector<MatrixParam> matrix_params() {
  std::vector<MatrixParam> params;
  constexpr std::uint64_t kSeeds[] = {1, 2, 3, 5, 8, 13, 21, 34};
  // The six stop-the-world collectors sweep 1..8 threads/cores (the
  // sequential reference ignores the knob but stays in the matrix as the
  // fixed point every width must agree with).
  constexpr std::uint32_t kThreads[] = {1, 2, 4, 8};
  for (CollectorId id : all_collectors()) {
    if (id == CollectorId::kConcurrent || id == CollectorId::kSnapshot) {
      continue;
    }
    for (std::uint64_t seed : kSeeds) {
      for (std::uint32_t t : kThreads) params.push_back({id, seed, t});
    }
  }
  // The concurrent cycle: 1, 2 and 8 GC cores racing the mutator. The
  // pauseless snapshot collector gets the same widths, with two real
  // mutator threads racing every cycle (the harness default).
  for (std::uint64_t seed : kSeeds) {
    for (std::uint32_t t : {1u, 2u, 8u}) {
      params.push_back({CollectorId::kConcurrent, seed, t});
      params.push_back({CollectorId::kSnapshot, seed, t});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllCollectors, ConformanceMatrix,
                         ::testing::ValuesIn(matrix_params()), matrix_name);

}  // namespace
}  // namespace hwgc
