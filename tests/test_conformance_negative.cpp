// Negative conformance tests: seed a deliberate corruption into a
// correctly collected heap and require the oracle to name that specific
// failure — a conformance kit that cannot distinguish "dropped an object"
// from "copied it twice" would be useless for debugging a collector.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "conformance/conformance.hpp"
#include "conformance/harness.hpp"
#include "heap/object_model.hpp"
#include "heap/verifier.hpp"
#include "workloads/random_graph.hpp"

namespace hwgc {
namespace {

bool has_error(const std::vector<std::string>& errors,
               const std::string& needle) {
  for (const auto& e : errors) {
    if (e.find(needle) != std::string::npos) return true;
  }
  return false;
}

std::string joined(const std::vector<std::string>& errors) {
  std::string s;
  for (const auto& e : errors) s += "\n  - " + e;
  return s;
}

/// Collects a random graph with `id`, hands the pre snapshot + post heap
/// to `corrupt`, and returns the oracle's diagnostics.
template <typename Corrupt>
std::vector<std::string> diagnose(CollectorId id, Corrupt&& corrupt) {
  RandomGraphConfig g;
  g.nodes = 60;
  ConformanceCase c;
  c.plan = make_random_plan(17, g);
  Workload w = materialize(c.plan, conformance_heap_factor(id, c));
  const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);
  EXPECT_GE(pre.objects.size(), 2u);
  const CycleReport report = make_harness(id)->collect(*w.heap);

  corrupt(pre, *w.heap);

  std::vector<std::string> errors;
  check_post_structure(id, pre, *w.heap, report, errors);
  return errors;
}

TEST(ConformanceNegative, CleanCollectionHasNoDiagnostics) {
  const auto errors =
      diagnose(CollectorId::kSequential, [](const HeapSnapshot&, Heap&) {});
  EXPECT_TRUE(errors.empty()) << joined(errors);
}

TEST(ConformanceNegative, DroppedEvacuationIsNamed) {
  const auto errors = diagnose(
      CollectorId::kSequential, [](const HeapSnapshot& pre, Heap& heap) {
        // Pretend the collector forgot one object: strip the forwarded
        // bit from its fromspace header.
        const Addr victim = pre.objects[1].addr;
        WordMemory& mem = heap.memory();
        mem.store(attributes_addr(victim),
                  mem.load(attributes_addr(victim)) & ~kForwardedBit);
      });
  EXPECT_TRUE(has_error(errors, "was not evacuated")) << joined(errors);
  EXPECT_TRUE(has_error(errors, "has no forwarding pointer"))
      << joined(errors);
}

TEST(ConformanceNegative, DoubleCopyIsNamed) {
  const auto errors = diagnose(
      CollectorId::kSequential, [](const HeapSnapshot& pre, Heap& heap) {
        // Two fromspace objects claiming the same copy — the failure a
        // lost CAS race in the evacuation protocol would produce.
        WordMemory& mem = heap.memory();
        const Addr a = pre.objects[0].addr;
        const Addr b = pre.objects[1].addr;
        mem.store(link_addr(b), mem.load(link_addr(a)));
      });
  EXPECT_TRUE(has_error(errors, "two objects forwarded to the same copy"))
      << joined(errors);
  EXPECT_TRUE(has_error(errors, "forwarding map not injective"))
      << joined(errors);
}

TEST(ConformanceNegative, StaleFromspacePointerIsNamed) {
  const auto errors = diagnose(
      CollectorId::kSequential, [](const HeapSnapshot& pre, Heap& heap) {
        // An unforwarded pointer left behind in a copy: find a copy with a
        // pointer field and point it back into the evacuated space.
        WordMemory& mem = heap.memory();
        for (const auto& rec : pre.objects) {
          if (rec.pi == 0) continue;
          const Addr copy = mem.load(link_addr(rec.addr));
          mem.store(pointer_field_addr(copy, 0), rec.addr);
          return;
        }
        FAIL() << "corpus held no object with a pointer field";
      });
  EXPECT_TRUE(has_error(errors, "stale fromspace pointer")) << joined(errors);
}

TEST(ConformanceNegative, OverlappingLabCopiesAreNamed) {
  const auto errors = diagnose(
      CollectorId::kStealing, [](const HeapSnapshot& pre, Heap& heap) {
        // A LAB handed to two threads at once would land one copy inside
        // another: shift an object's forwarding pointer one word into its
        // neighbor's copy.
        WordMemory& mem = heap.memory();
        const Addr a = pre.objects[0].addr;
        const Addr b = pre.objects[1].addr;
        mem.store(link_addr(b), mem.load(link_addr(a)) + 1);
      });
  EXPECT_TRUE(has_error(errors, "overlapping copies")) << joined(errors);
}

TEST(ConformanceNegative, ShadowMismatchCounterIsNamed) {
  // The concurrent collector's own oracle channel: a nonzero shadow-graph
  // validation counter must surface as a diagnostic.
  RandomGraphConfig g;
  g.nodes = 40;
  ConformanceCase c;
  c.plan = make_random_plan(5, g);
  Workload w = materialize(c.plan, 2.0);
  const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);
  CycleReport report = make_harness(CollectorId::kConcurrent)->collect(*w.heap);
  report.validation_mismatches = 3;
  std::vector<std::string> errors;
  check_post_structure(CollectorId::kConcurrent, pre, *w.heap, report, errors);
  EXPECT_TRUE(has_error(errors, "validation mismatches")) << joined(errors);
}

}  // namespace
}  // namespace hwgc
