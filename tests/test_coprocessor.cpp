// Coprocessor collector: edge cases, configuration knobs, determinism and
// the central property sweep — random graphs (cycles, self-loops, shared
// children, garbage) collected at every core count must always preserve
// the live graph, never violate the lock order, and agree with the
// sequential reference on what was copied.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "baselines/sequential_cheney.hpp"
#include "core/coprocessor.hpp"
#include "heap/verifier.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/random_graph.hpp"

namespace hwgc {
namespace {

GcCycleStats collect(Heap& heap, std::uint32_t cores,
                     SimConfig cfg = SimConfig{}) {
  cfg.coprocessor.num_cores = cores;
  Coprocessor coproc(cfg, heap);
  return coproc.collect();
}

TEST(Coprocessor, EmptyRootSetTerminatesImmediately) {
  Heap heap(256);
  heap.allocate(2, 2);  // garbage
  const GcCycleStats s = collect(heap, 8);
  EXPECT_EQ(s.objects_copied, 0u);
  EXPECT_EQ(s.words_copied, 0u);
  EXPECT_LT(s.total_cycles, 100u);
}

TEST(Coprocessor, NullRootsAreSkipped) {
  Heap heap(256);
  const Addr a = heap.allocate(0, 1);
  heap.set_data(a, 0, 5);
  heap.roots().assign({kNullPtr, a, kNullPtr});
  const HeapSnapshot pre = HeapSnapshot::capture(heap);
  collect(heap, 4);
  EXPECT_TRUE(verify_collection(pre, heap).ok);
  EXPECT_EQ(heap.roots()[0], kNullPtr);
  EXPECT_EQ(heap.roots()[2], kNullPtr);
}

TEST(Coprocessor, DuplicateRootsShareOneCopy) {
  Heap heap(256);
  const Addr a = heap.allocate(1, 1);
  heap.roots().assign({a, a, a});
  const GcCycleStats s = collect(heap, 4);
  EXPECT_EQ(s.objects_copied, 1u);
  EXPECT_EQ(heap.roots()[0], heap.roots()[1]);
  EXPECT_EQ(heap.roots()[1], heap.roots()[2]);
}

TEST(Coprocessor, SelfReferencePointsToOwnCopy) {
  Heap heap(256);
  const Addr a = heap.allocate(1, 0);
  heap.set_pointer(a, 0, a);
  heap.roots().assign({a});
  collect(heap, 4);
  const Addr copy = heap.roots()[0];
  EXPECT_EQ(heap.pointer(copy, 0), copy);
}

TEST(Coprocessor, CyclicGraphTerminates) {
  Heap heap(512);
  const Addr a = heap.allocate(1, 1);
  const Addr b = heap.allocate(1, 1);
  const Addr c = heap.allocate(1, 1);
  heap.set_pointer(a, 0, b);
  heap.set_pointer(b, 0, c);
  heap.set_pointer(c, 0, a);
  heap.roots().assign({a});
  const HeapSnapshot pre = HeapSnapshot::capture(heap);
  const GcCycleStats s = collect(heap, 8);
  EXPECT_EQ(s.objects_copied, 3u);
  EXPECT_TRUE(verify_collection(pre, heap).ok);
}

TEST(Coprocessor, GarbageIsNotCopied) {
  Heap heap(1024);
  const Addr live = heap.allocate(0, 4);
  for (int i = 0; i < 10; ++i) heap.allocate(2, 8);  // unreachable
  heap.roots().assign({live});
  const GcCycleStats s = collect(heap, 4);
  EXPECT_EQ(s.objects_copied, 1u);
  EXPECT_EQ(s.words_copied, object_words(0, 4));
}

TEST(Coprocessor, SingleCoreMatchesSequentialCheneyExactly) {
  // The paper: "this single-core configuration performs like the original
  // sequential implementation of Cheney's algorithm" — and it must also
  // produce the *identical* tospace image (same traversal order).
  const GraphPlan plan = make_benchmark_plan(BenchmarkId::kJlisp, 0.05);
  Workload a = materialize(plan);
  Workload b = materialize(plan);
  const HeapSnapshot pre_a = HeapSnapshot::capture(*a.heap);
  collect(*a.heap, 1);
  SequentialCheney::collect(*b.heap);
  ASSERT_EQ(a.heap->alloc_ptr(), b.heap->alloc_ptr());
  for (Addr x = a.heap->layout().current_base(); x < a.heap->alloc_ptr();
       ++x) {
    ASSERT_EQ(a.heap->memory().load(x), b.heap->memory().load(x))
        << "divergence at word " << x;
  }
  EXPECT_TRUE(verify_collection(pre_a, *a.heap).ok);
}

TEST(Coprocessor, DeterministicForFixedSeedAndConfig) {
  for (std::uint32_t cores : {3u, 16u}) {
    Workload w1 = make_benchmark(BenchmarkId::kJavacc, 0.02);
    Workload w2 = make_benchmark(BenchmarkId::kJavacc, 0.02);
    const GcCycleStats s1 = collect(*w1.heap, cores);
    const GcCycleStats s2 = collect(*w2.heap, cores);
    EXPECT_EQ(s1.total_cycles, s2.total_cycles);
    EXPECT_EQ(s1.worklist_empty_cycles, s2.worklist_empty_cycles);
    EXPECT_EQ(s1.mem_requests, s2.mem_requests);
    for (std::size_t c = 0; c < s1.per_core.size(); ++c) {
      EXPECT_EQ(s1.per_core[c].objects_scanned,
                s2.per_core[c].objects_scanned);
      EXPECT_EQ(s1.per_core[c].total_stalls(), s2.per_core[c].total_stalls());
    }
  }
}

TEST(Coprocessor, WorksWithFifoDisabled) {
  Workload w = make_benchmark(BenchmarkId::kDb, 0.01);
  const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);
  SimConfig cfg;
  cfg.coprocessor.header_fifo_capacity = 0;
  const GcCycleStats s = collect(*w.heap, 8, cfg);
  EXPECT_TRUE(verify_collection(pre, *w.heap).ok);
  EXPECT_EQ(s.fifo_hits, 0u);
  EXPECT_EQ(s.fifo_misses, s.objects_copied);
}

TEST(Coprocessor, FifoDisabledIsSlower) {
  SimConfig with_fifo;
  SimConfig without = with_fifo;
  without.coprocessor.header_fifo_capacity = 0;
  Workload w1 = make_benchmark(BenchmarkId::kDb, 0.02);
  Workload w2 = make_benchmark(BenchmarkId::kDb, 0.02);
  const Cycle fast = collect(*w1.heap, 8, with_fifo).total_cycles;
  const Cycle slow = collect(*w2.heap, 8, without).total_cycles;
  EXPECT_GT(slow, fast);
}

TEST(Coprocessor, MarkbitEarlyReadPreservesCorrectness) {
  for (BenchmarkId id : {BenchmarkId::kJavac, BenchmarkId::kJlisp}) {
    Workload w = make_benchmark(id, 0.02);
    const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);
    SimConfig cfg;
    cfg.coprocessor.markbit_early_read = true;
    const GcCycleStats s = collect(*w.heap, 16, cfg);
    EXPECT_EQ(s.objects_copied, pre.objects.size());
    EXPECT_TRUE(verify_collection(pre, *w.heap).ok) << benchmark_name(id);
  }
}

TEST(Coprocessor, WatchdogThrowsOnImpossibleBudget) {
  Workload w = make_benchmark(BenchmarkId::kJlisp, 0.05);
  SimConfig cfg;
  cfg.coprocessor.watchdog_cycles = 10;  // absurdly small
  cfg.coprocessor.num_cores = 2;
  Coprocessor coproc(cfg, *w.heap);
  EXPECT_THROW(coproc.collect(), std::runtime_error);
}

TEST(Coprocessor, MoreCoresNeverProduceWrongResultsUnderContention) {
  // Tiny objects + hot hubs + 16 cores: maximum contention on all three
  // lock classes at once.
  GraphPlan p;
  const auto hub = p.add(0, 1);
  std::vector<std::uint32_t> heads;
  for (int c = 0; c < 8; ++c) {
    std::uint32_t prev = 0;
    for (int i = 0; i < 200; ++i) {
      const auto n = p.add(2, 0);
      p.link(n, 1, hub);
      if (i == 0) {
        heads.push_back(n);
      } else {
        p.link(prev, 0, n);
      }
      prev = n;
    }
  }
  const auto root = p.add(static_cast<Word>(heads.size() + 1), 0);
  p.add_root(root);
  p.link(root, 0, hub);
  for (std::size_t i = 0; i < heads.size(); ++i) {
    p.link(root, static_cast<Word>(i + 1), heads[i]);
  }
  Workload w = materialize(p);
  const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);
  const GcCycleStats s = collect(*w.heap, 16);
  EXPECT_EQ(s.objects_copied, pre.objects.size());
  EXPECT_TRUE(s.lock_order_violations.empty());
  EXPECT_TRUE(verify_collection(pre, *w.heap).ok);
}

// ---------------------------------------------------------------------------
// Property sweep: random graphs x core counts.
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Termination-condition edge cases (Section IV: terminate exactly when
// scan == free and every busy bit is clear). The condition is reconstructed
// cycle-by-cycle from the on-change SignalTrace samples, so the tests see
// every moment it changed, not just the final state.
// ---------------------------------------------------------------------------

struct TerminationProfile {
  std::uint64_t false_to_true = 0;  ///< cycles the condition became true
  std::uint64_t false_cycles = 0;   ///< sampled cycles with condition false
  bool final_true = false;          ///< condition at the last sampled cycle
};

TerminationProfile replay_termination(const SignalTrace& trace) {
  const auto& names = trace.signal_names();
  const auto idx = [&](const char* want) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == want) return static_cast<std::uint16_t>(i);
    }
    throw std::runtime_error(std::string("signal not traced: ") + want);
  };
  const std::uint16_t sig_scan = idx("scan");
  const std::uint16_t sig_free = idx("free");
  const std::uint16_t sig_busy = idx("busy_cores");

  TerminationProfile prof;
  std::uint64_t scan = 0, free = 0, busy = 0;
  bool prev = true, have_prev = false;
  const auto& events = trace.events();
  for (std::size_t i = 0; i < events.size();) {
    const Cycle cycle = events[i].cycle;
    for (; i < events.size() && events[i].cycle == cycle; ++i) {
      if (events[i].signal == sig_scan) scan = events[i].value;
      if (events[i].signal == sig_free) free = events[i].value;
      if (events[i].signal == sig_busy) busy = events[i].value;
    }
    // Sampling is on-change: between sampled cycles the condition is
    // constant, so this visits every value it ever took.
    const bool cond = scan == free && busy == 0;
    if (!cond) ++prof.false_cycles;
    if (have_prev && !prev && cond) ++prof.false_to_true;
    prev = cond;
    have_prev = true;
    prof.final_true = cond;
  }
  return prof;
}

GcCycleStats collect_traced(Heap& heap, std::uint32_t cores,
                            SignalTrace& trace) {
  SimConfig cfg;
  cfg.coprocessor.num_cores = cores;
  Coprocessor coproc(cfg, heap);
  return coproc.collect(&trace);
}

TEST(CoprocessorTermination, EmptyRootSetNeverLeavesTheCondition) {
  Heap heap(256);
  heap.allocate(2, 2);  // unreachable
  SignalTrace trace;
  const GcCycleStats s = collect_traced(heap, 8, trace);
  const TerminationProfile prof = replay_termination(trace);
  EXPECT_EQ(s.objects_copied, 0u);
  // scan == free and all-idle hold from the first sampled cycle onward:
  // the condition is never left, so it is never re-reached.
  EXPECT_EQ(prof.false_cycles, 0u) << "condition must hold throughout";
  EXPECT_EQ(prof.false_to_true, 0u);
  EXPECT_TRUE(prof.final_true);
}

TEST(CoprocessorTermination, SingleObjectReachesTheConditionExactlyOnce) {
  Heap heap(256);
  const Addr a = heap.allocate(0, 0);  // minimal object: header only
  heap.roots().assign({a});
  const HeapSnapshot pre = HeapSnapshot::capture(heap);
  SignalTrace trace;
  const GcCycleStats s = collect_traced(heap, 4, trace);
  EXPECT_EQ(s.objects_copied, 1u);
  EXPECT_TRUE(verify_collection(pre, heap).ok);
  const TerminationProfile prof = replay_termination(trace);
  EXPECT_GT(prof.false_cycles, 0u) << "evacuating the root must open a "
                                      "scan != free window";
  EXPECT_EQ(prof.false_to_true, 1u)
      << "the termination condition must be reached exactly once";
  EXPECT_TRUE(prof.final_true);
}

TEST(CoprocessorTermination, IdleCoresWithOneLateEvacuationIsNotTermination) {
  // Root object with a big data area and one pointer discovered mid-scan:
  // while core 0 copies the data, scan == free and the other cores sit
  // idle — only core 0's busy bit separates that state from termination.
  // The condition must still be reached exactly once, at the real end.
  Heap heap(512);
  const Addr a = heap.allocate(1, 40);
  const Addr b = heap.allocate(0, 1);
  heap.set_pointer(a, 0, b);
  heap.roots().assign({a});
  const HeapSnapshot pre = HeapSnapshot::capture(heap);
  SignalTrace trace;
  const GcCycleStats s = collect_traced(heap, 8, trace);
  EXPECT_EQ(s.objects_copied, 2u);
  EXPECT_TRUE(verify_collection(pre, heap).ok);
  const TerminationProfile prof = replay_termination(trace);
  EXPECT_EQ(prof.false_to_true, 1u)
      << "busy bits must mask the idle-cores window";
  EXPECT_TRUE(prof.final_true);
}

class RandomGraphProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>> {
};

TEST_P(RandomGraphProperty, CollectsCorrectly) {
  const auto [seed, cores] = GetParam();
  RandomGraphConfig rcfg;
  rcfg.nodes = 400;
  const GraphPlan plan = make_random_plan(seed, rcfg);
  Workload w = materialize(plan);
  const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);
  const GcCycleStats s = collect(*w.heap, cores);
  EXPECT_EQ(s.objects_copied, pre.objects.size());
  EXPECT_TRUE(s.lock_order_violations.empty());
  const VerifyResult res = verify_collection(pre, *w.heap);
  EXPECT_TRUE(res.ok) << "seed=" << seed << " cores=" << cores << ": "
                      << res.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomGraphProperty,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 21),
                       ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 16u)),
    [](const auto& param_info) {
      return "seed" + std::to_string(std::get<0>(param_info.param)) +
             "_cores" + std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace hwgc
