// The two Section VII future-work extensions — sub-object striped copying
// and the header cache — must preserve every collector invariant and
// actually deliver their intended effect.
#include <gtest/gtest.h>

#include "core/coprocessor.hpp"
#include "core/sync_block.hpp"
#include "heap/verifier.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/random_graph.hpp"

namespace hwgc {
namespace {

GcCycleStats collect(Heap& heap, SimConfig cfg) {
  Coprocessor coproc(cfg, heap);
  return coproc.collect();
}

GraphPlan boulder_plan(Word count, Word delta) {
  GraphPlan p;
  const auto root = p.add(count, 0);
  p.add_root(root);
  for (Word f = 0; f < count; ++f) p.link(root, f, p.add(0, delta));
  return p;
}

// --- Stripe dispenser unit tests ------------------------------------------

TEST(StripeDispenser, PublishGrabCompleteLifecycle) {
  SyncBlock sb(4);
  sb.begin_cycle();
  ASSERT_TRUE(sb.stripe_publish(100, 200, make_attributes(0, 40)));
  SyncBlock::StripeTask t1{}, t2{}, t3{};
  ASSERT_TRUE(sb.stripe_grab(16, t1));
  EXPECT_EQ(t1.offset, 0u);
  EXPECT_EQ(t1.length, 16u);
  EXPECT_EQ(t1.orig, 100u);
  EXPECT_EQ(t1.copy, 200u);
  // One grab per cycle, like the scan/free locks.
  EXPECT_FALSE(sb.stripe_grab(16, t2));
  sb.begin_cycle();
  ASSERT_TRUE(sb.stripe_grab(16, t2));
  EXPECT_EQ(t2.offset, 16u);
  sb.begin_cycle();
  ASSERT_TRUE(sb.stripe_grab(16, t3));
  EXPECT_EQ(t3.offset, 32u);
  EXPECT_EQ(t3.length, 8u) << "final stripe is the remainder";
  sb.begin_cycle();
  SyncBlock::StripeTask t4{};
  EXPECT_FALSE(sb.stripe_grab(16, t4)) << "fully dispensed";
  EXPECT_FALSE(sb.stripes_idle()) << "job is still draining";
  EXPECT_FALSE(sb.stripe_complete(t1.slot));
  EXPECT_FALSE(sb.stripe_complete(t2.slot));
  EXPECT_TRUE(sb.stripe_complete(t3.slot)) << "last completion blackens";
  EXPECT_TRUE(sb.stripes_idle());
}

TEST(StripeDispenser, SlotsExhaustThenFree) {
  SyncBlock sb(2);
  for (std::uint32_t i = 0; i < SyncBlock::kStripeSlots; ++i) {
    ASSERT_TRUE(sb.stripe_publish(100 + i, 200 + i, make_attributes(0, 8)));
  }
  EXPECT_FALSE(sb.stripe_publish(999, 998, make_attributes(0, 8)))
      << "dispenser full: caller must fall back to sequential copy";
  sb.begin_cycle();
  SyncBlock::StripeTask t{};
  ASSERT_TRUE(sb.stripe_grab(16, t));
  EXPECT_TRUE(sb.stripe_complete(t.slot));
  EXPECT_TRUE(sb.stripe_publish(999, 998, make_attributes(0, 8)));
}

// --- End-to-end: correctness ------------------------------------------------

TEST(SubobjectCopy, PreservesInvariantsOnBoulders) {
  for (std::uint32_t cores : {1u, 2u, 8u, 16u}) {
    Workload w = materialize(boulder_plan(3, 5000));
    const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);
    SimConfig cfg;
    cfg.coprocessor.num_cores = cores;
    cfg.coprocessor.subobject_copy = true;
    const GcCycleStats s = collect(*w.heap, cfg);
    EXPECT_EQ(s.objects_copied, pre.objects.size());
    const VerifyResult res = verify_collection(pre, *w.heap);
    EXPECT_TRUE(res.ok) << "cores=" << cores << ": " << res.summary();
  }
}

TEST(SubobjectCopy, PreservesInvariantsOnAllBenchmarks) {
  for (BenchmarkId id : all_benchmarks()) {
    Workload w = make_benchmark(id, 0.01);
    const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);
    SimConfig cfg;
    cfg.coprocessor.num_cores = 8;
    cfg.coprocessor.subobject_copy = true;
    cfg.coprocessor.stripe_threshold = 8;  // stripe aggressively
    cfg.coprocessor.stripe_words = 4;
    const GcCycleStats s = collect(*w.heap, cfg);
    EXPECT_EQ(s.objects_copied, pre.objects.size()) << benchmark_name(id);
    const VerifyResult res = verify_collection(pre, *w.heap);
    EXPECT_TRUE(res.ok) << benchmark_name(id) << ": " << res.summary();
  }
}

TEST(SubobjectCopy, RandomGraphSweep) {
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    RandomGraphConfig rcfg;
    rcfg.nodes = 300;
    rcfg.max_delta = 200;  // plenty of objects above the stripe threshold
    Workload w = materialize(make_random_plan(seed, rcfg));
    const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);
    SimConfig cfg;
    cfg.coprocessor.num_cores = 13;
    cfg.coprocessor.subobject_copy = true;
    cfg.coprocessor.stripe_threshold = 32;
    const GcCycleStats s = collect(*w.heap, cfg);
    EXPECT_EQ(s.objects_copied, pre.objects.size()) << "seed " << seed;
    const VerifyResult res = verify_collection(pre, *w.heap);
    EXPECT_TRUE(res.ok) << "seed " << seed << ": " << res.summary();
  }
}

// --- End-to-end: intended effect ---------------------------------------------

TEST(SubobjectCopy, SpeedsUpGiantObjects) {
  // Four 20k-word boulders on 16 cores: object-level parallelism is 4,
  // stripe-level parallelism is bounded by bandwidth instead.
  SimConfig obj_cfg;
  obj_cfg.coprocessor.num_cores = 16;
  SimConfig sub_cfg = obj_cfg;
  sub_cfg.coprocessor.subobject_copy = true;

  Workload w1 = materialize(boulder_plan(4, 20000));
  Workload w2 = materialize(boulder_plan(4, 20000));
  const Cycle obj = collect(*w1.heap, obj_cfg).total_cycles;
  const Cycle sub = collect(*w2.heap, sub_cfg).total_cycles;
  EXPECT_LT(static_cast<double>(sub), 0.7 * static_cast<double>(obj))
      << "striping must substantially shorten the boulder tail";
}

TEST(HeaderCache, PreservesInvariants) {
  for (BenchmarkId id : {BenchmarkId::kJavac, BenchmarkId::kCup}) {
    Workload w = make_benchmark(id, 0.02);
    const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);
    SimConfig cfg;
    cfg.coprocessor.num_cores = 16;
    cfg.memory.header_cache_entries = 1024;
    const GcCycleStats s = collect(*w.heap, cfg);
    EXPECT_EQ(s.objects_copied, pre.objects.size()) << benchmark_name(id);
    EXPECT_TRUE(verify_collection(pre, *w.heap).ok) << benchmark_name(id);
  }
}

TEST(HeaderCache, AcceleratesHotHeaders) {
  SimConfig off;
  off.coprocessor.num_cores = 16;
  SimConfig on = off;
  on.memory.header_cache_entries = 4096;

  Workload w1 = make_benchmark(BenchmarkId::kJavac, 0.05);
  Workload w2 = make_benchmark(BenchmarkId::kJavac, 0.05);
  const Cycle slow = collect(*w1.heap, off).total_cycles;
  const Cycle fast = collect(*w2.heap, on).total_cycles;
  EXPECT_LT(fast, slow) << "hot symbol hubs must benefit from the cache";
}

TEST(Extensions, AllThreeCompose) {
  Workload w = make_benchmark(BenchmarkId::kCompress, 0.02);
  const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);
  SimConfig cfg;
  cfg.coprocessor.num_cores = 16;
  cfg.coprocessor.subobject_copy = true;
  cfg.memory.header_cache_entries = 1024;
  cfg.coprocessor.markbit_early_read = true;  // all three extensions at once
  const GcCycleStats s = collect(*w.heap, cfg);
  EXPECT_EQ(s.objects_copied, pre.objects.size());
  EXPECT_TRUE(s.lock_order_violations.empty());
  EXPECT_TRUE(verify_collection(pre, *w.heap).ok);
}

}  // namespace
}  // namespace hwgc
