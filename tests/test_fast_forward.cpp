// Fast-forward equivalence (DESIGN.md §13).
//
// The quiescent fast-forward in Coprocessor::collect must be
// observationally invisible: a run with cfg.coprocessor.fast_forward on
// must be bit-identical to the ticked run in every architectural and
// observable dimension — GcCycleStats down to the per-core stall arrays,
// the SignalTrace sample stream and fault notes, the ScheduleTrace ring
// and recorded-cycle count, the final tospace image, and (under fault
// injection) the abort cycle, suspect core and fired-event log. The fault
// cases in particular pin the ISSUE requirement that watchdog budgets
// account for skipped cycles: a hang detected by jumping straight to the
// watchdog boundary must abort at exactly the cycle a ticked run aborts.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "core/coprocessor.hpp"
#include "core/schedule_policy.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "heap/heap.hpp"
#include "sim/abort.hpp"
#include "sim/config.hpp"
#include "sim/counters.hpp"
#include "sim/trace.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/graph_plan.hpp"
#include "workloads/random_graph.hpp"

namespace hwgc {
namespace {

/// Everything observable about one collection attempt.
struct RunOutcome {
  GcCycleStats stats;
  bool aborted = false;
  AbortReason reason = AbortReason::kWatchdog;
  CoreId suspect = kNoCore;
  Cycle abort_at = 0;
  std::vector<std::string> fault_log;
  // Final heap image (tospace words), empty for aborted runs.
  Addr alloc_ptr = 0;
  std::vector<Word> image;
};

RunOutcome run_once(const GraphPlan& plan, SimConfig cfg, bool fast_forward,
                    SignalTrace& trace, ScheduleTrace& sched,
                    const FaultPlan* faults = nullptr) {
  cfg.coprocessor.fast_forward = fast_forward;
  Workload w = materialize(plan);
  trace.enable();
  Coprocessor coproc(cfg, *w.heap);
  RunOutcome out;
  if (faults == nullptr) {
    out.stats = coproc.collect(&trace, &sched);
  } else {
    FaultInjector inj(*faults);
    inj.attach_memory(&w.heap->memory());
    inj.attach_trace(&trace);
    std::vector<CoreId> active(cfg.coprocessor.num_cores);
    std::iota(active.begin(), active.end(), CoreId{0});
    inj.begin_attempt(0, active);
    try {
      out.stats = coproc.collect(&trace, &sched, &inj);
    } catch (const CollectionAbort& abort) {
      out.aborted = true;
      out.reason = abort.reason();
      out.suspect = abort.suspect();
      out.abort_at = abort.at();
      out.fault_log = inj.log();
      return out;
    }
    out.fault_log = inj.log();
  }
  out.alloc_ptr = w.heap->alloc_ptr();
  for (Addr a = w.heap->layout().current_base(); a < w.heap->alloc_ptr();
       ++a) {
    out.image.push_back(w.heap->memory().load(a));
  }
  return out;
}

void expect_core_counters_equal(const CoreCounters& t, const CoreCounters& f,
                                std::size_t core) {
  for (std::size_t r = 0; r < kStallReasonCount; ++r) {
    EXPECT_EQ(t.stalls[r], f.stalls[r])
        << "core " << core << " stall["
        << to_string(static_cast<StallReason>(r)) << "]";
  }
  EXPECT_EQ(t.busy_cycles, f.busy_cycles) << "core " << core;
  EXPECT_EQ(t.idle_cycles, f.idle_cycles) << "core " << core;
  EXPECT_EQ(t.objects_scanned, f.objects_scanned) << "core " << core;
  EXPECT_EQ(t.objects_evacuated, f.objects_evacuated) << "core " << core;
  EXPECT_EQ(t.pointers_processed, f.pointers_processed) << "core " << core;
  EXPECT_EQ(t.fifo_hits, f.fifo_hits) << "core " << core;
  EXPECT_EQ(t.fifo_misses, f.fifo_misses) << "core " << core;
}

void expect_stats_equal(const GcCycleStats& t, const GcCycleStats& f) {
  EXPECT_EQ(t.total_cycles, f.total_cycles);
  EXPECT_EQ(t.worklist_empty_cycles, f.worklist_empty_cycles);
  EXPECT_EQ(t.objects_copied, f.objects_copied);
  EXPECT_EQ(t.words_copied, f.words_copied);
  EXPECT_EQ(t.pointers_forwarded, f.pointers_forwarded);
  EXPECT_EQ(t.fifo_overflows, f.fifo_overflows);
  EXPECT_EQ(t.mem_requests, f.mem_requests);
  EXPECT_EQ(t.fifo_hits, f.fifo_hits);
  EXPECT_EQ(t.fifo_misses, f.fifo_misses);
  EXPECT_EQ(t.drain_cycles, f.drain_cycles);
  EXPECT_EQ(t.restart_stores_drained, f.restart_stores_drained);
  EXPECT_EQ(t.faults_fired, f.faults_fired);
  EXPECT_EQ(t.lock_order_violations, f.lock_order_violations);
  ASSERT_EQ(t.per_core.size(), f.per_core.size());
  for (std::size_t c = 0; c < t.per_core.size(); ++c) {
    expect_core_counters_equal(t.per_core[c], f.per_core[c], c);
  }
}

void expect_traces_equal(const SignalTrace& t, const SignalTrace& f) {
  ASSERT_EQ(t.events().size(), f.events().size());
  for (std::size_t i = 0; i < t.events().size(); ++i) {
    const TraceEvent& a = t.events()[i];
    const TraceEvent& b = f.events()[i];
    EXPECT_EQ(a.cycle, b.cycle) << "event " << i;
    EXPECT_EQ(a.signal, b.signal) << "event " << i;
    EXPECT_EQ(a.value, b.value) << "event " << i;
  }
  ASSERT_EQ(t.notes().size(), f.notes().size());
  for (std::size_t i = 0; i < t.notes().size(); ++i) {
    EXPECT_EQ(t.notes()[i].first, f.notes()[i].first) << "note " << i;
    EXPECT_EQ(t.notes()[i].second, f.notes()[i].second) << "note " << i;
  }
}

void expect_schedules_equal(const ScheduleTrace& t, const ScheduleTrace& f) {
  EXPECT_EQ(t.cycles_recorded(), f.cycles_recorded());
  ASSERT_EQ(t.orders().size(), f.orders().size());
  for (std::size_t i = 0; i < t.orders().size(); ++i) {
    EXPECT_EQ(t.orders()[i].first, f.orders()[i].first) << "ring entry " << i;
    EXPECT_EQ(t.orders()[i].second, f.orders()[i].second)
        << "ring entry " << i;
  }
}

/// Runs the plan ticked and fast-forwarded, asserts full observational
/// equality, and returns the ticked outcome for extra assertions.
RunOutcome expect_equivalent(const GraphPlan& plan, SimConfig cfg,
                             const FaultPlan* faults = nullptr) {
  SignalTrace trace_t, trace_f;
  ScheduleTrace sched_t, sched_f;
  const RunOutcome ticked =
      run_once(plan, cfg, /*fast_forward=*/false, trace_t, sched_t, faults);
  const RunOutcome ffwd =
      run_once(plan, cfg, /*fast_forward=*/true, trace_f, sched_f, faults);
  EXPECT_EQ(ticked.aborted, ffwd.aborted);
  if (ticked.aborted && ffwd.aborted) {
    EXPECT_EQ(ticked.reason, ffwd.reason);
    EXPECT_EQ(ticked.suspect, ffwd.suspect);
    EXPECT_EQ(ticked.abort_at, ffwd.abort_at);
  } else {
    expect_stats_equal(ticked.stats, ffwd.stats);
    EXPECT_EQ(ticked.alloc_ptr, ffwd.alloc_ptr);
    EXPECT_EQ(ticked.image, ffwd.image);
  }
  EXPECT_EQ(ticked.fault_log, ffwd.fault_log);
  expect_traces_equal(trace_t, trace_f);
  expect_schedules_equal(sched_t, sched_f);
  return ticked;
}

SimConfig config_with_cores(std::uint32_t cores) {
  SimConfig cfg;
  cfg.coprocessor.num_cores = cores;
  return cfg;
}

// --- fault-free equivalence ------------------------------------------------

TEST(FastForward, BenchmarkPlansIdenticalAcrossCoreCounts) {
  const GraphPlan plan = make_benchmark_plan(BenchmarkId::kJlisp, 0.05);
  for (std::uint32_t cores : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("cores=" + std::to_string(cores));
    const RunOutcome t = expect_equivalent(plan, config_with_cores(cores));
    EXPECT_GT(t.stats.total_cycles, 0u);
  }
}

TEST(FastForward, RandomGraphsIdenticalAcrossSeeds) {
  for (std::uint64_t seed : {7ull, 1234ull, 99ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    expect_equivalent(make_random_plan(seed), config_with_cores(4));
  }
}

TEST(FastForward, EmptyAndTinyHeapsIdentical) {
  // Degenerate graphs maximize the idle/terminate edge cases: an empty
  // root set hits the all-idle termination veto almost immediately.
  GraphPlan empty;
  expect_equivalent(empty, config_with_cores(8));
  RandomGraphConfig tiny;
  tiny.nodes = 3;
  tiny.roots = 1;
  expect_equivalent(make_random_plan(42, tiny), config_with_cores(8));
}

TEST(FastForward, MarkbitEarlyReadVariantIdentical) {
  SimConfig cfg = config_with_cores(4);
  cfg.coprocessor.markbit_early_read = true;
  expect_equivalent(make_benchmark_plan(BenchmarkId::kJavacc, 0.03), cfg);
}

TEST(FastForward, SubobjectCopyVariantIdentical) {
  SimConfig cfg = config_with_cores(4);
  cfg.coprocessor.subobject_copy = true;
  cfg.coprocessor.stripe_threshold = 16;  // stripe even modest objects
  expect_equivalent(make_benchmark_plan(BenchmarkId::kJlisp, 0.05), cfg);
}

TEST(FastForward, HighMemoryLatencyIdentical) {
  // Figure 6's +20-cycle latency regime is where quiescent windows are
  // longest and fast-forward does the most work — the config the perf
  // baseline leans on, so equivalence here is load-bearing.
  SimConfig cfg = config_with_cores(2);
  cfg.memory.latency += 20;
  cfg.memory.header_latency += 20;
  expect_equivalent(make_benchmark_plan(BenchmarkId::kDb, 0.05), cfg);
}

TEST(FastForward, TinyFifoOverflowPathIdentical) {
  SimConfig cfg = config_with_cores(4);
  cfg.coprocessor.header_fifo_capacity = 2;  // force overflow bypasses
  const RunOutcome t =
      expect_equivalent(make_benchmark_plan(BenchmarkId::kJlisp, 0.05), cfg);
  EXPECT_GT(t.stats.fifo_overflows, 0u);
}

TEST(FastForward, NonFixedScheduleStillCorrectWithFlagOn) {
  // Rotating/random policies bypass fast-forward (the per-cycle order
  // mutates policy state); the flag being on must not change anything.
  for (SchedulePolicyKind kind :
       {SchedulePolicyKind::kRotating, SchedulePolicyKind::kRandom,
        SchedulePolicyKind::kAdversarial}) {
    SCOPED_TRACE(to_string(kind));
    SimConfig cfg = config_with_cores(4);
    cfg.coprocessor.schedule = kind;
    cfg.coprocessor.schedule_seed = 77;
    expect_equivalent(make_random_plan(5), cfg);
  }
}

// --- ticking-assumption regressions ----------------------------------------
//
// Audit of per-tick accounting in the clock loop (everything else in the
// tree reads stats.total_cycles, i.e. the clock): each site below used to
// assume one loop iteration == one cycle and was converted to bulk
// accounting when fast-forward landed. These tests exercise each site
// across a jump and pin the ticked value, so a regression to ++-per-
// iteration accounting shows up as a concrete undercount, not just a
// generic equality failure.

TEST(FastForward, WorklistEmptyCyclesAccumulateAcrossJumps) {
  // Table I's counter: while the last gray object's header load is in
  // flight, scan == free and the other cores idle — a quiescent window
  // that fast-forward skips, so the counter must be bumped by the jump
  // length, not by loop iterations.
  SimConfig cfg = config_with_cores(4);
  cfg.memory.latency += 20;
  cfg.memory.header_latency += 20;
  const RunOutcome t =
      expect_equivalent(make_benchmark_plan(BenchmarkId::kJlisp, 0.05), cfg);
  EXPECT_GT(t.stats.worklist_empty_cycles, 0u);
}

TEST(FastForward, ScheduleTraceCountsSkippedCycles) {
  // cycles_recorded() is the watchdog of the schedule ring: it must equal
  // the number of scan-phase cycles even when most of them were never
  // materialized, and the replayed ring tail must be gap-free.
  SimConfig cfg = config_with_cores(2);
  cfg.memory.latency += 20;
  cfg.memory.header_latency += 20;
  SignalTrace trace;
  ScheduleTrace sched;
  const GraphPlan plan = make_benchmark_plan(BenchmarkId::kJlisp, 0.05);
  const RunOutcome ff =
      run_once(plan, cfg, /*fast_forward=*/true, trace, sched);
  EXPECT_GT(sched.cycles_recorded(), 0u);
  EXPECT_LE(sched.cycles_recorded(), ff.stats.total_cycles);
  for (std::size_t i = 1; i < sched.orders().size(); ++i) {
    EXPECT_EQ(sched.orders()[i].first, sched.orders()[i - 1].first + 1)
        << "replayed ring entries must be contiguous cycles";
  }
}

TEST(FastForward, DrainCyclesMeasuredAcrossJumps) {
  // drain_cycles = clock at flush minus clock at halt; the drain phase is
  // one long quiescent window (cores done, stores in flight), so it is
  // usually jumped in a single step.
  SimConfig cfg = config_with_cores(4);
  cfg.memory.latency += 20;
  const RunOutcome t =
      expect_equivalent(make_benchmark_plan(BenchmarkId::kJlisp, 0.05), cfg);
  EXPECT_GT(t.stats.drain_cycles, 0u);
}

TEST(FastForward, StallCountersAbsorbJumpedCycles) {
  // Per-core stall attribution (Table II) must grow by the jump length:
  // with two cores and long header latency the header-load stall counter
  // dwarfs the number of loop iterations a fast-forwarded run executes.
  SimConfig cfg = config_with_cores(2);
  cfg.memory.header_latency = 200;
  const RunOutcome t =
      expect_equivalent(make_benchmark_plan(BenchmarkId::kJlisp, 0.02), cfg);
  EXPECT_GT(t.stats.mean_stall(StallReason::kHeaderLoad), 100.0);
}

// --- fault-injected equivalence --------------------------------------------

TEST(FastForward, CoreStallWindowIdentical) {
  FaultPlan plan;
  FaultEvent e;
  e.kind = FaultKind::kCoreStall;
  e.target_core = 1;
  e.trigger = 50;
  e.param = 200;
  plan.events.push_back(e);
  const RunOutcome t = expect_equivalent(
      make_benchmark_plan(BenchmarkId::kJlisp, 0.05), config_with_cores(4),
      &plan);
  EXPECT_FALSE(t.aborted);
  EXPECT_EQ(t.stats.faults_fired, 1u);
  EXPECT_EQ(t.fault_log.size(), 1u);
}

TEST(FastForward, LockDelayWindowIdentical) {
  for (LockKind lock : {LockKind::kScan, LockKind::kFree}) {
    SCOPED_TRACE(lock == LockKind::kScan ? "scan" : "free");
    FaultPlan plan;
    FaultEvent e;
    e.kind = FaultKind::kLockDelay;
    e.lock = lock;
    e.trigger = 30;
    e.param = 120;
    plan.events.push_back(e);
    const RunOutcome t = expect_equivalent(
        make_benchmark_plan(BenchmarkId::kJlisp, 0.05), config_with_cores(4),
        &plan);
    EXPECT_FALSE(t.aborted);
  }
}

TEST(FastForward, MemDelayIdentical) {
  FaultPlan plan;
  FaultEvent e;
  e.kind = FaultKind::kMemDelay;
  e.target_core = 0;
  e.port = Port::kHeader;
  e.op = MemOp::kLoad;
  e.trigger = 2;
  e.param = 400;  // long in-flight gap: a pure fast-forward window
  plan.events.push_back(e);
  const RunOutcome t = expect_equivalent(
      make_benchmark_plan(BenchmarkId::kJlisp, 0.05), config_with_cores(2),
      &plan);
  EXPECT_FALSE(t.aborted);
  EXPECT_EQ(t.stats.faults_fired, 1u);
}

TEST(FastForward, MemDropHangAbortsAtIdenticalWatchdogCycle) {
  // The ISSUE's "watchdog budgets must account for skipped cycles" case: a
  // dropped header-load reply leaves its core waiting forever. Ticked, the
  // clock grinds to watchdog_cycles one cycle at a time; fast-forwarded it
  // jumps there in one step. The CollectionAbort must carry the identical
  // cycle and suspect either way.
  FaultPlan plan;
  FaultEvent e;
  e.kind = FaultKind::kMemDrop;
  e.target_core = 1;
  e.port = Port::kHeader;
  e.op = MemOp::kLoad;
  e.trigger = 1;
  plan.events.push_back(e);
  SimConfig cfg = config_with_cores(4);
  cfg.coprocessor.watchdog_cycles = 20'000;
  const RunOutcome t = expect_equivalent(
      make_benchmark_plan(BenchmarkId::kJlisp, 0.05), cfg, &plan);
  ASSERT_TRUE(t.aborted);
  EXPECT_EQ(t.reason, AbortReason::kWatchdog);
  EXPECT_EQ(t.abort_at, cfg.coprocessor.watchdog_cycles);
}

TEST(FastForward, StuckBusyHangAbortsIdentically) {
  // A stuck-at-1 busy bit defeats the termination condition: every core
  // idles on an empty worklist until the watchdog fires. The suspect scan
  // (busy() vs busy_raw()) must localize the same core in both runs.
  FaultPlan plan;
  FaultEvent e;
  e.kind = FaultKind::kStuckBusy;
  e.target_core = 2;
  e.trigger = 100;
  plan.events.push_back(e);
  SimConfig cfg = config_with_cores(4);
  cfg.coprocessor.watchdog_cycles = 20'000;
  const RunOutcome t = expect_equivalent(
      make_benchmark_plan(BenchmarkId::kJlisp, 0.05), cfg, &plan);
  ASSERT_TRUE(t.aborted);
  EXPECT_EQ(t.reason, AbortReason::kWatchdog);
  EXPECT_EQ(t.suspect, 2u);
  EXPECT_EQ(t.abort_at, cfg.coprocessor.watchdog_cycles);
}

TEST(FastForward, FailStopIdentical) {
  // Whether the dead core leaves a hang (it died busy) or the others finish
  // without it (it died idle) must be the same answer in both runs.
  for (Cycle trigger : {Cycle{10}, Cycle{500}}) {
    SCOPED_TRACE("trigger=" + std::to_string(trigger));
    FaultPlan plan;
    FaultEvent e;
    e.kind = FaultKind::kCoreFailStop;
    e.target_core = 1;
    e.trigger = trigger;
    plan.events.push_back(e);
    SimConfig cfg = config_with_cores(4);
    cfg.coprocessor.watchdog_cycles = 20'000;
    expect_equivalent(make_benchmark_plan(BenchmarkId::kJlisp, 0.05), cfg,
                      &plan);
  }
}

TEST(FastForward, FailStopHoldingFreeLockHangsIdentically) {
  // Dying inside the 1-cycle free critical section leaves the free lock
  // held forever — the nastiest hang the paper's watchdog must catch.
  FaultPlan plan;
  FaultEvent e;
  e.kind = FaultKind::kCoreFailStop;
  e.target_core = 1;
  e.when_holding_free = true;
  plan.events.push_back(e);
  SimConfig cfg = config_with_cores(4);
  cfg.coprocessor.watchdog_cycles = 20'000;
  const RunOutcome t = expect_equivalent(
      make_benchmark_plan(BenchmarkId::kJlisp, 0.05), cfg, &plan);
  ASSERT_TRUE(t.aborted);
  EXPECT_EQ(t.reason, AbortReason::kWatchdog);
  EXPECT_EQ(t.abort_at, cfg.coprocessor.watchdog_cycles);
}

TEST(FastForward, CombinedFaultPlanIdentical) {
  // Several cycle-triggered events with overlapping windows: the boundary
  // clamping must land every firing on a live cycle in the right order.
  FaultPlan plan;
  FaultEvent stall;
  stall.kind = FaultKind::kCoreStall;
  stall.target_core = 0;
  stall.trigger = 40;
  stall.param = 300;
  plan.events.push_back(stall);
  FaultEvent lockd;
  lockd.kind = FaultKind::kLockDelay;
  lockd.lock = LockKind::kScan;
  lockd.trigger = 100;
  lockd.param = 250;
  plan.events.push_back(lockd);
  FaultEvent delay;
  delay.kind = FaultKind::kMemDelay;
  delay.target_core = 1;
  delay.port = Port::kBody;
  delay.op = MemOp::kLoad;
  delay.trigger = 3;
  delay.param = 150;
  plan.events.push_back(delay);
  const RunOutcome t = expect_equivalent(
      make_benchmark_plan(BenchmarkId::kJlisp, 0.05), config_with_cores(4),
      &plan);
  EXPECT_FALSE(t.aborted);
}

TEST(FastForward, SeededFaultPlansIdentical) {
  // Seeded plans mix all classes; sweep a few seeds for breadth. Outcomes
  // (complete or abort) vary by seed — only equality matters here.
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    FaultConfig fc;
    fc.seed = seed;
    fc.events = 4;
    const FaultPlan plan = FaultPlan::from_config(fc, 4);
    SimConfig cfg = config_with_cores(4);
    cfg.coprocessor.watchdog_cycles = 50'000;
    expect_equivalent(make_benchmark_plan(BenchmarkId::kJlisp, 0.05), cfg,
                      &plan);
  }
}

}  // namespace
}  // namespace hwgc
