// Seeded fault plans and the FaultInjector hooks: plan determinism and
// class masking, plus the per-class injector behaviour each hardware
// module observes (dropped transactions, ghost duplicates, suppressed
// lock grants, stuck busy bits, core fates) and the transient/persistent
// re-arming and deconfiguration-dormancy rules recovery depends on.
#include <gtest/gtest.h>

#include <string>

#include "core/sync_block.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "mem/memory_system.hpp"

namespace hwgc {
namespace {

std::string plan_digest(const FaultPlan& plan) {
  std::string d;
  for (const FaultEvent& e : plan.events) d += e.summary() + "\n";
  return d;
}

TEST(FaultPlan, DeterministicForSeedAndConfig) {
  FaultConfig cfg;
  cfg.seed = 7;
  cfg.events = 16;
  const FaultPlan a = FaultPlan::from_config(cfg, 8);
  const FaultPlan b = FaultPlan::from_config(cfg, 8);
  ASSERT_EQ(a.size(), 16u);
  EXPECT_EQ(plan_digest(a), plan_digest(b));
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  FaultConfig cfg;
  cfg.events = 16;
  cfg.seed = 1;
  const FaultPlan a = FaultPlan::from_config(cfg, 8);
  cfg.seed = 2;
  const FaultPlan b = FaultPlan::from_config(cfg, 8);
  EXPECT_NE(plan_digest(a), plan_digest(b));
}

TEST(FaultPlan, ClassMaskRestrictsKinds) {
  FaultConfig cfg;
  cfg.seed = 3;
  cfg.events = 32;
  cfg.class_mask = (1u << static_cast<std::uint32_t>(FaultKind::kMemDrop)) |
                   (1u << static_cast<std::uint32_t>(FaultKind::kCoreFailStop));
  const FaultPlan plan = FaultPlan::from_config(cfg, 4);
  for (const FaultEvent& e : plan.events) {
    EXPECT_TRUE(e.kind == FaultKind::kMemDrop ||
                e.kind == FaultKind::kCoreFailStop)
        << e.summary();
  }
}

TEST(FaultPlan, TargetsOnlyConfiguredCores) {
  FaultConfig cfg;
  cfg.seed = 9;
  cfg.events = 64;
  for (std::uint32_t cores : {1u, 3u, 16u}) {
    const FaultPlan plan = FaultPlan::from_config(cfg, cores);
    for (const FaultEvent& e : plan.events) {
      EXPECT_LT(e.target_core, cores) << e.summary();
    }
  }
}

TEST(FaultPlan, ParseRoundTripsEveryKindName) {
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    const FaultKind kind = static_cast<FaultKind>(k);
    FaultKind parsed;
    ASSERT_TRUE(parse_fault_kind(to_string(kind), parsed)) << to_string(kind);
    EXPECT_EQ(parsed, kind);
  }
  FaultKind parsed;
  EXPECT_FALSE(parse_fault_kind("definitely-not-a-fault", parsed));
}

FaultEvent mem_drop_event(CoreId core = 0) {
  FaultEvent e;
  e.kind = FaultKind::kMemDrop;
  e.target_core = core;
  e.port = Port::kHeader;
  e.op = MemOp::kLoad;
  e.trigger = 0;
  return e;
}

TEST(FaultInjector, DroppedLoadNeverCompletes) {
  FaultPlan plan;
  plan.events.push_back(mem_drop_event());
  FaultInjector inj(std::move(plan));
  inj.begin_attempt(0, {0});
  MemorySystem mem(MemoryConfig{}, 1, &inj);
  mem.issue_load(0, Port::kHeader, 100);
  for (Cycle t = 1; t <= 200; ++t) mem.tick(t);
  EXPECT_TRUE(mem.load_pending(0, Port::kHeader))
      << "the dropped reply must leave the load buffer stalled";
  EXPECT_EQ(inj.fired_total(), 1u);
}

TEST(FaultInjector, TransientFiresOnceAcrossAttempts) {
  FaultPlan plan;
  plan.events.push_back(mem_drop_event());
  FaultInjector inj(std::move(plan));
  inj.begin_attempt(0, {0});
  EXPECT_EQ(inj.on_mem_accept(0, Port::kHeader, MemOp::kLoad, 5).kind,
            MemFaultAction::Kind::kDrop);
  inj.begin_attempt(1, {0});
  EXPECT_EQ(inj.on_mem_accept(0, Port::kHeader, MemOp::kLoad, 5).kind,
            MemFaultAction::Kind::kNone);
  EXPECT_EQ(inj.fired_total(), 1u);
}

TEST(FaultInjector, PersistentRearmsEveryAttempt) {
  FaultPlan plan;
  plan.events.push_back(mem_drop_event());
  plan.events.back().persistent = true;
  FaultInjector inj(std::move(plan));
  for (std::uint32_t attempt = 0; attempt < 3; ++attempt) {
    inj.begin_attempt(attempt, {0});
    EXPECT_EQ(inj.on_mem_accept(0, Port::kHeader, MemOp::kLoad, 5).kind,
              MemFaultAction::Kind::kDrop);
  }
  EXPECT_EQ(inj.fired_total(), 3u);
}

TEST(FaultInjector, EventDormantWhenTargetCoreDeconfigured) {
  FaultPlan plan;
  plan.events.push_back(mem_drop_event(/*core=*/0));
  plan.events.back().persistent = true;
  FaultInjector inj(std::move(plan));
  // Physical core 0 was deconfigured: logical core 0 is physical core 1.
  inj.begin_attempt(0, {1});
  EXPECT_EQ(inj.on_mem_accept(0, Port::kHeader, MemOp::kLoad, 5).kind,
            MemFaultAction::Kind::kNone);
  EXPECT_EQ(inj.fired_total(), 0u);
}

TEST(FaultInjector, TriggerCountsMatchingTransactions) {
  FaultPlan plan;
  plan.events.push_back(mem_drop_event());
  plan.events.back().trigger = 2;  // third matching transaction
  FaultInjector inj(std::move(plan));
  inj.begin_attempt(0, {0});
  EXPECT_EQ(inj.on_mem_accept(0, Port::kHeader, MemOp::kLoad, 1).kind,
            MemFaultAction::Kind::kNone);
  // Non-matching port does not advance the trigger counter.
  EXPECT_EQ(inj.on_mem_accept(0, Port::kBody, MemOp::kLoad, 2).kind,
            MemFaultAction::Kind::kNone);
  EXPECT_EQ(inj.on_mem_accept(0, Port::kHeader, MemOp::kLoad, 3).kind,
            MemFaultAction::Kind::kNone);
  EXPECT_EQ(inj.on_mem_accept(0, Port::kHeader, MemOp::kLoad, 4).kind,
            MemFaultAction::Kind::kDrop);
}

TEST(FaultInjector, MemDelayStretchesCompletion) {
  FaultPlan plan;
  FaultEvent e;
  e.kind = FaultKind::kMemDelay;
  e.target_core = 0;
  e.port = Port::kBody;
  e.op = MemOp::kLoad;
  e.param = 37;
  plan.events.push_back(e);
  FaultInjector inj(std::move(plan));
  inj.begin_attempt(0, {0});
  MemoryConfig cfg;
  MemorySystem mem(cfg, 1, &inj);
  Cycle now = 0;
  mem.issue_load(0, Port::kBody, 100);
  while (mem.load_pending(0, Port::kBody)) {
    ++now;
    mem.tick(now);
    ASSERT_LT(now, 1000u);
  }
  EXPECT_EQ(now, cfg.latency + 1 + 37);
}

TEST(FaultInjector, StuckBusyReadsThroughSyncBlock) {
  FaultPlan plan;
  FaultEvent e;
  e.kind = FaultKind::kStuckBusy;
  e.target_core = 0;
  e.trigger = 3;
  plan.events.push_back(e);
  FaultInjector inj(std::move(plan));
  inj.begin_attempt(0, {0, 1});
  SyncBlock sb(2, &inj);
  inj.begin_clock(2);
  EXPECT_FALSE(sb.busy(0));
  EXPECT_TRUE(sb.all_idle());
  inj.begin_clock(3);
  EXPECT_TRUE(sb.busy(0)) << "busy bit must read stuck-at-1 from the trigger";
  EXPECT_FALSE(sb.busy_raw(0)) << "the architectural bit stays clear";
  EXPECT_FALSE(sb.all_idle());
}

TEST(FaultInjector, LockDelaySuppressesGrantDuringWindow) {
  FaultPlan plan;
  FaultEvent e;
  e.kind = FaultKind::kLockDelay;
  e.lock = LockKind::kScan;
  e.trigger = 10;
  e.param = 5;
  plan.events.push_back(e);
  FaultInjector inj(std::move(plan));
  inj.begin_attempt(0, {0});
  SyncBlock sb(1, &inj);
  inj.begin_clock(10);
  sb.begin_cycle();
  EXPECT_FALSE(sb.try_lock_scan(0));
  inj.begin_clock(15);  // window [10, 15) is over
  sb.begin_cycle();
  EXPECT_TRUE(sb.try_lock_scan(0));
  EXPECT_EQ(inj.fired_total(), 1u);
}

TEST(FaultInjector, CoreStallWindowAndFailStop) {
  FaultPlan plan;
  FaultEvent stall;
  stall.kind = FaultKind::kCoreStall;
  stall.target_core = 0;
  stall.trigger = 5;
  stall.param = 3;
  plan.events.push_back(stall);
  FaultEvent stop;
  stop.kind = FaultKind::kCoreFailStop;
  stop.target_core = 1;
  stop.trigger = 7;
  plan.events.push_back(stop);
  FaultInjector inj(std::move(plan));
  inj.begin_attempt(0, {0, 1});
  inj.begin_clock(4);
  EXPECT_EQ(inj.core_fate(0, false), CoreFate::kRun);
  EXPECT_EQ(inj.core_fate(1, false), CoreFate::kRun);
  inj.begin_clock(6);
  EXPECT_EQ(inj.core_fate(0, false), CoreFate::kStall);
  inj.begin_clock(8);
  EXPECT_EQ(inj.core_fate(0, false), CoreFate::kRun) << "stall window is over";
  EXPECT_EQ(inj.core_fate(1, false), CoreFate::kStopped);
  inj.begin_clock(9);
  EXPECT_EQ(inj.core_fate(1, false), CoreFate::kStopped)
      << "fail-stop is permanent for the attempt";
}

TEST(FaultInjector, FailStopConditionedOnFreeLock) {
  FaultPlan plan;
  FaultEvent e;
  e.kind = FaultKind::kCoreFailStop;
  e.target_core = 0;
  e.when_holding_free = true;
  plan.events.push_back(e);
  FaultInjector inj(std::move(plan));
  inj.begin_attempt(0, {0});
  inj.begin_clock(100);
  EXPECT_EQ(inj.core_fate(0, /*holds_free=*/false), CoreFate::kRun);
  EXPECT_EQ(inj.core_fate(0, /*holds_free=*/true), CoreFate::kStopped);
}

}  // namespace
}  // namespace hwgc
