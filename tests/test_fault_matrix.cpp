// Fault matrix through the differential oracle: every fault class, swept
// across schedule policies and core counts, must end in a verified heap
// identical to the sequential reference (masked or recovered) with the
// recovery counters accounting for every injected event — never silent
// corruption. This is the in-tree slice of the fault_lab sweep; the
// fuzz-smoke label also runs it under the sanitizers.
#include <gtest/gtest.h>

#include "fault/fault_plan.hpp"
#include "fuzz/oracle.hpp"

namespace hwgc {
namespace {

FuzzCase fault_case(FaultKind kind, std::uint32_t cores,
                    SchedulePolicyKind schedule, std::uint64_t seed) {
  FuzzCase fc;
  fc.graph_seed = 42 + seed;
  fc.graph.min_nodes = 32;
  fc.graph.max_nodes = 64;
  fc.num_cores = cores;
  fc.schedule = schedule;
  fc.schedule_seed = seed;
  fc.fault.seed = seed;
  fc.fault.events = 3;
  fc.fault.trigger_scale = 48;  // keep trigger points inside short runs
  fc.fault.class_mask = 1u << static_cast<std::uint32_t>(kind);
  return fc;
}

void check_accounting(const FuzzVerdict& v, const FuzzCase& fc) {
  EXPECT_EQ(v.recovery.faults_injected, fc.fault.events);
  std::uint64_t per_attempt = 0;
  for (const auto& a : v.recovery.attempts) per_attempt += a.faults_fired;
  EXPECT_EQ(per_attempt, v.recovery.faults_fired);
  EXPECT_EQ(v.recovery.fault_log.size(), v.recovery.faults_fired);
}

TEST(FaultMatrix, EveryClassRecoversAcrossSchedulesAndCores) {
  static constexpr SchedulePolicyKind kSchedules[] = {
      SchedulePolicyKind::kFixedPriority,
      SchedulePolicyKind::kRotating,
      SchedulePolicyKind::kRandom,
      SchedulePolicyKind::kAdversarial,
  };
  std::uint64_t fired = 0;
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    const FaultKind kind = static_cast<FaultKind>(k);
    for (std::uint32_t cores : {2u, 4u}) {
      for (std::uint64_t seed : {1u, 2u}) {
        const FuzzCase fc =
            fault_case(kind, cores, kSchedules[(k + seed) % 4], seed);
        const FuzzVerdict v = run_fuzz_case(fc);
        EXPECT_TRUE(v.ok) << to_string(kind) << " cores=" << cores
                          << " seed=" << seed << "\n"
                          << v.summary() << "\nrepro: fuzz_gc " << fc.summary();
        ASSERT_TRUE(v.fault_run);
        check_accounting(v, fc);
        fired += v.recovery.faults_fired;
      }
    }
  }
  EXPECT_GT(fired, 0u) << "the matrix must actually exercise fault firings";
}

TEST(FaultMatrix, MixedClassPlansRecover) {
  // All classes enabled at once: several unrelated faults interacting in
  // one collection must still end in a verified or recovered heap.
  for (std::uint64_t seed : {3u, 7u, 13u}) {
    FuzzCase fc = fault_case(FaultKind::kMemDrop, 4,
                             SchedulePolicyKind::kRandom, seed);
    fc.fault.class_mask = 0xffffffffu;
    fc.fault.events = 6;
    const FuzzVerdict v = run_fuzz_case(fc);
    EXPECT_TRUE(v.ok) << v.summary() << "\nrepro: fuzz_gc " << fc.summary();
    check_accounting(v, fc);
  }
}

TEST(FaultMatrix, FaultRunsAreReproducible) {
  // Same case → identical recovery trajectory, attempt for attempt. This
  // is what makes every fault_lab cell a one-line reproducer.
  const FuzzCase fc =
      fault_case(FaultKind::kCoreFailStop, 4, SchedulePolicyKind::kRotating, 5);
  const FuzzVerdict a = run_fuzz_case(fc);
  const FuzzVerdict b = run_fuzz_case(fc);
  ASSERT_TRUE(a.ok) << a.summary();
  ASSERT_TRUE(b.ok) << b.summary();
  ASSERT_EQ(a.recovery.attempts.size(), b.recovery.attempts.size());
  for (std::size_t i = 0; i < a.recovery.attempts.size(); ++i) {
    EXPECT_EQ(a.recovery.attempts[i].success, b.recovery.attempts[i].success);
    EXPECT_EQ(a.recovery.attempts[i].cycles, b.recovery.attempts[i].cycles);
    EXPECT_EQ(a.recovery.attempts[i].faults_fired,
              b.recovery.attempts[i].faults_fired);
  }
  EXPECT_EQ(a.recovery.fault_log, b.recovery.fault_log);
  EXPECT_EQ(a.recovery.deconfigured, b.recovery.deconfigured);
}

}  // namespace
}  // namespace hwgc
