// GraphBuilder convenience layer and ShadowMutator internals.
#include <gtest/gtest.h>

#include "baselines/sequential_cheney.hpp"
#include "heap/verifier.hpp"
#include "workloads/graph_builder.hpp"
#include "workloads/mutator.hpp"

namespace hwgc {
namespace {

TEST(GraphBuilder, BuildsAndTracksNodes) {
  Heap heap(4096);
  GraphBuilder gb(heap, 7);
  const Addr a = gb.node(2, 3);
  const Addr b = gb.node(0, 1);
  gb.link(a, 0, b);
  gb.add_root(a);
  EXPECT_EQ(gb.count(), 2u);
  EXPECT_EQ(gb.nodes().size(), 2u);
  EXPECT_EQ(heap.pointer(a, 0), b);
  EXPECT_EQ(heap.roots().size(), 1u);
  // Data fill pattern must be deterministic and non-zero.
  EXPECT_NE(heap.data(a, 0), 0u);
  Heap heap2(4096);
  GraphBuilder gb2(heap2, 7);
  const Addr a2 = gb2.node(2, 3);
  EXPECT_EQ(heap.data(a, 1), heap2.data(a2, 1));
}

TEST(GraphBuilder, ThrowsOnExhaustion) {
  Heap heap(32);
  GraphBuilder gb(heap);
  gb.node(0, 10);
  EXPECT_THROW(gb.node(0, 20), std::runtime_error);
}

TEST(GraphBuilder, BuiltGraphCollectsCorrectly) {
  Heap heap(8192);
  GraphBuilder gb(heap, 11);
  // A small diamond with a cycle back to the top.
  const Addr top = gb.node(2, 1);
  const Addr l = gb.node(1, 2);
  const Addr r = gb.node(1, 2);
  const Addr bottom = gb.node(1, 0);
  gb.link(top, 0, l);
  gb.link(top, 1, r);
  gb.link(l, 0, bottom);
  gb.link(r, 0, bottom);
  gb.link(bottom, 0, top);  // cycle
  gb.add_root(top);
  const HeapSnapshot pre = HeapSnapshot::capture(heap);
  EXPECT_EQ(pre.objects.size(), 4u);
  SequentialCheney::collect(heap);
  EXPECT_TRUE(verify_collection(pre, heap).ok);
}

TEST(ShadowMutator, TracksLiveRootedCount) {
  Runtime rt(1 << 14);
  ShadowMutator mut({.seed = 3, .target_live = 16});
  EXPECT_EQ(mut.live_rooted(), 0u);
  mut.run(rt, 200);
  EXPECT_GT(mut.live_rooted(), 0u);
  EXPECT_GT(mut.allocations(), 0u);
  EXPECT_EQ(mut.validate(rt), 0u);
}

TEST(ShadowMutator, DeterministicForSeed) {
  Runtime rt1(1 << 14), rt2(1 << 14);
  ShadowMutator m1({.seed = 9}), m2({.seed = 9});
  m1.run(rt1, 500);
  m2.run(rt2, 500);
  EXPECT_EQ(m1.allocations(), m2.allocations());
  EXPECT_EQ(m1.live_rooted(), m2.live_rooted());
}

}  // namespace
}  // namespace hwgc
