// Unit tests for the on-chip gray-header FIFO (paper Section V-D).
#include <gtest/gtest.h>

#include "mem/header_fifo.hpp"

namespace hwgc {
namespace {

HeaderFifo::Entry entry(Addr a) { return {a, 0x40000u + a, a + 1000}; }

TEST(HeaderFifo, PopInPushOrder) {
  HeaderFifo fifo(8);
  EXPECT_TRUE(fifo.push(entry(10)));
  EXPECT_TRUE(fifo.push(entry(20)));
  EXPECT_TRUE(fifo.push(entry(30)));
  HeaderFifo::Entry e;
  ASSERT_TRUE(fifo.pop(10, e));
  EXPECT_EQ(e.attributes, 0x40000u + 10);
  EXPECT_EQ(e.backlink, 1010u);
  ASSERT_TRUE(fifo.pop(20, e));
  ASSERT_TRUE(fifo.pop(30, e));
  EXPECT_TRUE(fifo.empty());
  EXPECT_EQ(fifo.hits(), 3u);
  EXPECT_EQ(fifo.misses(), 0u);
}

TEST(HeaderFifo, OverflowSkipsAndCountsAndLaterHits) {
  HeaderFifo fifo(2);
  EXPECT_TRUE(fifo.push(entry(10)));
  EXPECT_TRUE(fifo.push(entry(20)));
  EXPECT_FALSE(fifo.push(entry(30)));  // lost to overflow
  EXPECT_TRUE(fifo.push(entry(40)) == false);  // still full
  EXPECT_EQ(fifo.overflows(), 2u);

  HeaderFifo::Entry e;
  EXPECT_TRUE(fifo.pop(10, e));
  EXPECT_TRUE(fifo.pop(20, e));
  // 30 was never pushed: a miss, and the FIFO (now holding nothing) must
  // not be disturbed.
  EXPECT_FALSE(fifo.pop(30, e));
  // After the overflow window, pushes succeed again.
  EXPECT_TRUE(fifo.push(entry(50)));
  EXPECT_FALSE(fifo.pop(40, e));  // 40 also lost
  EXPECT_TRUE(fifo.pop(50, e));
  EXPECT_EQ(fifo.misses(), 2u);
  EXPECT_EQ(fifo.hits(), 3u);
}

TEST(HeaderFifo, MissKeepsLaterEntryQueued) {
  HeaderFifo fifo(1);
  EXPECT_TRUE(fifo.push(entry(10)));
  EXPECT_FALSE(fifo.push(entry(20)));  // overflow
  HeaderFifo::Entry e;
  // Scan order is 10 then 20: a pop for 20 would be a bug in the caller,
  // but a pop for 10 hits, and the subsequent 20 misses without popping
  // anything that belongs to a later frame.
  EXPECT_TRUE(fifo.pop(10, e));
  EXPECT_TRUE(fifo.push(entry(30)));
  EXPECT_FALSE(fifo.pop(20, e));
  EXPECT_EQ(fifo.size(), 1u);
  EXPECT_TRUE(fifo.pop(30, e));
}

TEST(HeaderFifo, ZeroCapacityAlwaysMisses) {
  HeaderFifo fifo(0);
  EXPECT_FALSE(fifo.push(entry(10)));
  HeaderFifo::Entry e;
  EXPECT_FALSE(fifo.pop(10, e));
  EXPECT_EQ(fifo.overflows(), 1u);
  EXPECT_EQ(fifo.misses(), 1u);
}

TEST(HeaderFifo, CapacityBoundary) {
  HeaderFifo fifo(3);
  for (Addr a = 0; a < 3; ++a) EXPECT_TRUE(fifo.push(entry(100 + a * 4)));
  EXPECT_EQ(fifo.size(), 3u);
  EXPECT_FALSE(fifo.push(entry(200)));
  HeaderFifo::Entry e;
  EXPECT_TRUE(fifo.pop(100, e));
  EXPECT_TRUE(fifo.push(entry(204)));  // slot freed
  EXPECT_EQ(fifo.size(), 3u);
}

}  // namespace
}  // namespace hwgc
