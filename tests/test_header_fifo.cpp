// Unit tests for the on-chip gray-header FIFO (paper Section V-D).
#include <gtest/gtest.h>

#include "core/coprocessor.hpp"
#include "heap/verifier.hpp"
#include "mem/header_fifo.hpp"
#include "sim/counters.hpp"
#include "workloads/random_graph.hpp"

namespace hwgc {
namespace {

HeaderFifo::Entry entry(Addr a) { return {a, 0x40000u + a, a + 1000}; }

TEST(HeaderFifo, PopInPushOrder) {
  HeaderFifo fifo(8);
  EXPECT_TRUE(fifo.push(entry(10)));
  EXPECT_TRUE(fifo.push(entry(20)));
  EXPECT_TRUE(fifo.push(entry(30)));
  HeaderFifo::Entry e;
  ASSERT_TRUE(fifo.pop(10, e));
  EXPECT_EQ(e.attributes, 0x40000u + 10);
  EXPECT_EQ(e.backlink, 1010u);
  ASSERT_TRUE(fifo.pop(20, e));
  ASSERT_TRUE(fifo.pop(30, e));
  EXPECT_TRUE(fifo.empty());
  EXPECT_EQ(fifo.hits(), 3u);
  EXPECT_EQ(fifo.misses(), 0u);
}

TEST(HeaderFifo, OverflowSkipsAndCountsAndLaterHits) {
  HeaderFifo fifo(2);
  EXPECT_TRUE(fifo.push(entry(10)));
  EXPECT_TRUE(fifo.push(entry(20)));
  EXPECT_FALSE(fifo.push(entry(30)));  // lost to overflow
  EXPECT_TRUE(fifo.push(entry(40)) == false);  // still full
  EXPECT_EQ(fifo.overflows(), 2u);

  HeaderFifo::Entry e;
  EXPECT_TRUE(fifo.pop(10, e));
  EXPECT_TRUE(fifo.pop(20, e));
  // 30 was never pushed: a miss, and the FIFO (now holding nothing) must
  // not be disturbed.
  EXPECT_FALSE(fifo.pop(30, e));
  // After the overflow window, pushes succeed again.
  EXPECT_TRUE(fifo.push(entry(50)));
  EXPECT_FALSE(fifo.pop(40, e));  // 40 also lost
  EXPECT_TRUE(fifo.pop(50, e));
  EXPECT_EQ(fifo.misses(), 2u);
  EXPECT_EQ(fifo.hits(), 3u);
}

TEST(HeaderFifo, MissKeepsLaterEntryQueued) {
  HeaderFifo fifo(1);
  EXPECT_TRUE(fifo.push(entry(10)));
  EXPECT_FALSE(fifo.push(entry(20)));  // overflow
  HeaderFifo::Entry e;
  // Scan order is 10 then 20: a pop for 20 would be a bug in the caller,
  // but a pop for 10 hits, and the subsequent 20 misses without popping
  // anything that belongs to a later frame.
  EXPECT_TRUE(fifo.pop(10, e));
  EXPECT_TRUE(fifo.push(entry(30)));
  EXPECT_FALSE(fifo.pop(20, e));
  EXPECT_EQ(fifo.size(), 1u);
  EXPECT_TRUE(fifo.pop(30, e));
}

TEST(HeaderFifo, ZeroCapacityAlwaysMisses) {
  HeaderFifo fifo(0);
  EXPECT_FALSE(fifo.push(entry(10)));
  HeaderFifo::Entry e;
  EXPECT_FALSE(fifo.pop(10, e));
  EXPECT_EQ(fifo.overflows(), 1u);
  EXPECT_EQ(fifo.misses(), 1u);
}

TEST(HeaderFifo, CapacityBoundary) {
  HeaderFifo fifo(3);
  for (Addr a = 0; a < 3; ++a) EXPECT_TRUE(fifo.push(entry(100 + a * 4)));
  EXPECT_EQ(fifo.size(), 3u);
  EXPECT_FALSE(fifo.push(entry(200)));
  HeaderFifo::Entry e;
  EXPECT_TRUE(fifo.pop(100, e));
  EXPECT_TRUE(fifo.push(entry(204)));  // slot freed
  EXPECT_EQ(fifo.size(), 3u);
}

TEST(HeaderFifo, OrderingSurvivesWraparound) {
  // Fill to capacity, then keep the FIFO saturated through three times its
  // capacity worth of push/pop traffic: the pop order must stay the push
  // order across every internal wrap of the ring.
  constexpr std::uint32_t kCap = 4;
  HeaderFifo fifo(kCap);
  Addr next_push = 0, next_pop = 0;
  for (; next_push < kCap; ++next_push) {
    EXPECT_TRUE(fifo.push(entry(next_push * 4)));
  }
  EXPECT_EQ(fifo.size(), kCap);
  EXPECT_FALSE(fifo.push(entry(next_push * 4)));  // full: backpressure
  EXPECT_EQ(fifo.overflows(), 1u);
  ++next_push;  // frame 4 was lost; scan will miss on it below

  HeaderFifo::Entry e;
  for (int round = 0; round < 3 * static_cast<int>(kCap); ++round) {
    // Pop the oldest surviving frame...
    if (next_pop == 4) {
      EXPECT_FALSE(fifo.pop(next_pop * 4, e)) << "lost frame must miss";
      ++next_pop;
    }
    ASSERT_TRUE(fifo.pop(next_pop * 4, e)) << "round " << round;
    EXPECT_EQ(e.attributes, 0x40000u + next_pop * 4) << "order corrupted";
    EXPECT_EQ(e.backlink, next_pop * 4 + 1000u);
    ++next_pop;
    // ...and refill the freed slot, crossing the wrap point repeatedly.
    EXPECT_TRUE(fifo.push(entry(next_push * 4)));
    ++next_push;
    EXPECT_EQ(fifo.size(), kCap);
  }
  EXPECT_EQ(fifo.overflows(), 1u) << "steady-state traffic must not overflow";
  EXPECT_EQ(fifo.misses(), 1u);
}

TEST(HeaderFifo, BackpressureStallsLandOnTheRightCounters) {
  // A FIFO far smaller than the gray population forces overflows; every
  // lost entry turns into a scan-side miss whose fallback header load runs
  // inside the scan critical section: the missing core charges
  // kHeaderLoad, the cores spinning on the lock meanwhile charge
  // kScanLock (the `cup` effect, Section V-D). Correctness is unaffected.
  RandomGraphConfig rcfg;
  rcfg.nodes = 200;
  const GraphPlan plan = make_random_plan(99, rcfg);
  Workload w = materialize(plan);
  const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);

  SimConfig cfg;
  cfg.coprocessor.num_cores = 4;
  cfg.coprocessor.header_fifo_capacity = 2;
  Coprocessor coproc(cfg, *w.heap);
  const GcCycleStats s = coproc.collect();

  EXPECT_GT(s.fifo_overflows, 0u);
  EXPECT_GT(s.fifo_misses, 0u);
  Cycle header_load_stalls = 0, scan_lock_stalls = 0;
  for (const auto& c : s.per_core) {
    header_load_stalls += c.stall(StallReason::kHeaderLoad);
    scan_lock_stalls += c.stall(StallReason::kScanLock);
  }
  EXPECT_GT(header_load_stalls, 0u)
      << "FIFO misses must surface as header-load stalls";
  EXPECT_GT(scan_lock_stalls, 0u)
      << "the miss fallback holds the scan lock; contenders must stall on it";
  const VerifyResult res = verify_collection(pre, *w.heap);
  EXPECT_TRUE(res.ok) << res.summary();
}

}  // namespace
}  // namespace hwgc
