// Unit tests for the heap substrate: word memory, semispace geometry and
// bump allocation.
#include <gtest/gtest.h>

#include "heap/heap.hpp"
#include "heap/object_model.hpp"

namespace hwgc {
namespace {

TEST(WordMemory, ReservesNullWord) {
  WordMemory mem(16);
  EXPECT_EQ(mem.size(), 16u);
  mem.store(1, 0xabcd);
  EXPECT_EQ(mem.load(1), 0xabcdu);
}

TEST(WordMemory, AtomicAccessAgreesWithPlain) {
  WordMemory mem(8);
  mem.store_atomic(3, 77);
  EXPECT_EQ(mem.load(3), 77u);
  Word expected = 77;
  EXPECT_TRUE(mem.cas(3, expected, 99));
  EXPECT_EQ(mem.load_atomic(3), 99u);
  expected = 77;  // stale
  EXPECT_FALSE(mem.cas(3, expected, 11));
  EXPECT_EQ(expected, 99u) << "failed CAS must report the observed value";
}

TEST(SemispaceLayout, GeometryAndFlip) {
  SemispaceLayout layout(100);
  EXPECT_EQ(layout.total_words(), 201u);
  EXPECT_EQ(layout.fromspace_base(), 1u);
  EXPECT_EQ(layout.tospace_base(), 101u);
  EXPECT_TRUE(layout.in_fromspace(1));
  EXPECT_TRUE(layout.in_fromspace(100));
  EXPECT_FALSE(layout.in_fromspace(101));
  EXPECT_TRUE(layout.in_tospace(101));
  EXPECT_TRUE(layout.in_tospace(200));
  EXPECT_FALSE(layout.in_tospace(201));

  layout.flip();
  EXPECT_EQ(layout.fromspace_base(), 101u);
  EXPECT_EQ(layout.tospace_base(), 1u);
  layout.flip();
  EXPECT_EQ(layout.fromspace_base(), 1u);
}

TEST(Heap, AllocationInitializesObject) {
  Heap heap(1024);
  const Addr obj = heap.allocate(2, 3);
  ASSERT_NE(obj, kNullPtr);
  EXPECT_EQ(heap.pi(obj), 2u);
  EXPECT_EQ(heap.delta(obj), 3u);
  EXPECT_EQ(heap.size_words(obj), 7u);
  EXPECT_EQ(heap.pointer(obj, 0), kNullPtr);
  EXPECT_EQ(heap.pointer(obj, 1), kNullPtr);
  EXPECT_EQ(heap.data(obj, 0), 0u);
  EXPECT_EQ(heap.data(obj, 2), 0u);
}

TEST(Heap, AllocationIsDenseAndOrdered) {
  Heap heap(1024);
  const Addr a = heap.allocate(1, 1);
  const Addr b = heap.allocate(0, 0);
  const Addr c = heap.allocate(3, 2);
  EXPECT_EQ(b, a + 4);
  EXPECT_EQ(c, b + 2);
  EXPECT_EQ(heap.used_words(), 4u + 2u + 7u);
  EXPECT_EQ(heap.objects_allocated(), 3u);
}

TEST(Heap, ReturnsNullWhenFull) {
  Heap heap(16);
  EXPECT_NE(heap.allocate(0, 10), kNullPtr);  // 12 words
  EXPECT_EQ(heap.allocate(0, 10), kNullPtr);  // would exceed 16
  EXPECT_NE(heap.allocate(0, 2), kNullPtr);   // 4 words still fit
}

TEST(Heap, FieldReadWriteRoundTrip) {
  Heap heap(256);
  const Addr a = heap.allocate(2, 2);
  const Addr b = heap.allocate(0, 1);
  heap.set_pointer(a, 1, b);
  heap.set_data(a, 0, 0x12345678);
  heap.set_data(b, 0, 42);
  EXPECT_EQ(heap.pointer(a, 1), b);
  EXPECT_EQ(heap.pointer(a, 0), kNullPtr);
  EXPECT_EQ(heap.data(a, 0), 0x12345678u);
  EXPECT_EQ(heap.data(b, 0), 42u);
}

TEST(Heap, RootsAreStable) {
  Heap heap(256);
  const Addr a = heap.allocate(0, 1);
  heap.roots().push_back(a);
  heap.roots().push_back(kNullPtr);
  EXPECT_EQ(heap.roots().size(), 2u);
  EXPECT_EQ(heap.roots()[0], a);
}

}  // namespace
}  // namespace hwgc
