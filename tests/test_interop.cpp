// Interoperability: every collector operates on the same heap format, so
// consecutive cycles may be run by different collectors — the coprocessor,
// the sequential reference and the software baselines must all accept a
// heap the others produced.
#include <gtest/gtest.h>

#include "baselines/chunked_copying.hpp"
#include "baselines/naive_parallel.hpp"
#include "baselines/sequential_cheney.hpp"
#include "baselines/work_packets.hpp"
#include "baselines/work_stealing.hpp"
#include "core/coprocessor.hpp"
#include "heap/verifier.hpp"
#include "workloads/benchmarks.hpp"

namespace hwgc {
namespace {

TEST(Interop, AlternatingCollectorsPreserveTheGraph) {
  Workload w = make_benchmark(BenchmarkId::kJavacc, 0.02);
  Heap& heap = *w.heap;

  // Cycle 1: coprocessor.
  {
    const HeapSnapshot pre = HeapSnapshot::capture(heap);
    SimConfig cfg;
    cfg.coprocessor.num_cores = 8;
    Coprocessor coproc(cfg, heap);
    coproc.collect();
    EXPECT_TRUE(verify_collection(pre, heap).ok);
  }
  // Cycle 2: sequential software Cheney on the coprocessor's output.
  {
    const HeapSnapshot pre = HeapSnapshot::capture(heap);
    SequentialCheney::collect(heap);
    EXPECT_TRUE(verify_collection(pre, heap).ok);
  }
  // Cycle 3: work-stealing (leaves LAB holes).
  {
    const HeapSnapshot pre = HeapSnapshot::capture(heap);
    WorkStealingCollector({.threads = 4}).collect(heap);
    EXPECT_TRUE(verify_collection(pre, heap, {.require_dense = false}).ok);
  }
  // Cycle 4: the coprocessor must accept the non-dense heap the
  // work-stealing collector left behind (holes are garbage words between
  // live objects — never reachable, never touched).
  {
    const HeapSnapshot pre = HeapSnapshot::capture(heap);
    SimConfig cfg;
    cfg.coprocessor.num_cores = 4;
    Coprocessor coproc(cfg, heap);
    coproc.collect();
    const VerifyResult res = verify_collection(pre, heap);
    EXPECT_TRUE(res.ok) << res.summary();
  }
  // Cycle 5: chunked, then packets, to round out the matrix.
  {
    const HeapSnapshot pre = HeapSnapshot::capture(heap);
    ChunkedCopyingCollector({.threads = 4}).collect(heap);
    EXPECT_TRUE(verify_collection(pre, heap, {.require_dense = false}).ok);
  }
  {
    const HeapSnapshot pre = HeapSnapshot::capture(heap);
    WorkPacketCollector({.threads = 4}).collect(heap);
    EXPECT_TRUE(verify_collection(pre, heap).ok);
  }
}

TEST(Interop, AllCollectorsProduceTheSameLiveSet) {
  const GraphPlan plan = make_benchmark_plan(BenchmarkId::kDb, 0.01);
  std::uint64_t expected = 0;
  {
    Workload w = materialize(plan);
    const SequentialGcStats s = SequentialCheney::collect(*w.heap);
    expected = s.objects_copied;
  }
  {
    Workload w = materialize(plan);
    SimConfig cfg;
    cfg.coprocessor.num_cores = 16;
    Coprocessor coproc(cfg, *w.heap);
    EXPECT_EQ(coproc.collect().objects_copied, expected);
  }
  {
    Workload w = materialize(plan);
    EXPECT_EQ(NaiveParallelCheney({.threads = 8}).collect(*w.heap).objects_copied,
              expected);
  }
  {
    Workload w = materialize(plan);
    EXPECT_EQ(ChunkedCopyingCollector({.threads = 8}).collect(*w.heap).objects_copied,
              expected);
  }
  {
    Workload w = materialize(plan);
    EXPECT_EQ(WorkPacketCollector({.threads = 8}).collect(*w.heap).objects_copied,
              expected);
  }
  {
    Workload w = materialize(plan);
    EXPECT_EQ(WorkStealingCollector({.threads = 8}).collect(*w.heap).objects_copied,
              expected);
  }
}

}  // namespace
}  // namespace hwgc
