// Unit tests for the split-transaction memory access scheduler
// (paper Section V-D): buffer occupancy, per-class latencies, bandwidth
// limits, the comparator-array header ordering and the end-of-cycle flush.
#include <gtest/gtest.h>

#include "mem/memory_system.hpp"

namespace hwgc {
namespace {

MemoryConfig fast(Cycle body = 4, Cycle header = 10, std::uint32_t bw = 4) {
  MemoryConfig cfg;
  cfg.latency = body;
  cfg.header_latency = header;
  cfg.bandwidth_per_cycle = bw;
  return cfg;
}

/// Ticks until the load completes; returns the number of cycles waited.
Cycle wait_load(MemorySystem& mem, CoreId core, Port port, Cycle& now,
                Cycle limit = 1000) {
  const Cycle start = now;
  while (mem.load_pending(core, port)) {
    ++now;
    mem.tick(now);
    if (now - start > limit) ADD_FAILURE() << "load never completed";
  }
  return now - start;
}

TEST(MemorySystem, BodyLoadObservesBodyLatency) {
  MemorySystem mem(fast(), 1);
  Cycle now = 0;
  mem.issue_load(0, Port::kBody, 100);
  EXPECT_TRUE(mem.load_pending(0, Port::kBody));
  const Cycle waited = wait_load(mem, 0, Port::kBody, now);
  // Accept at tick(now+1), complete latency cycles later.
  EXPECT_EQ(waited, fast().latency + 1);
}

TEST(MemorySystem, HeaderLoadObservesHeaderLatency) {
  MemorySystem mem(fast(), 1);
  Cycle now = 0;
  mem.issue_load(0, Port::kHeader, 100);
  const Cycle waited = wait_load(mem, 0, Port::kHeader, now);
  EXPECT_EQ(waited, fast().header_latency + 1);
}

TEST(MemorySystem, StoreBufferDepthTwo) {
  MemorySystem mem(fast(), 1);
  EXPECT_EQ(mem.store_slots_free(0, Port::kHeader), MemorySystem::kStoreDepth);
  mem.issue_store(0, Port::kHeader, 10);
  mem.issue_store(0, Port::kHeader, 12);
  EXPECT_TRUE(mem.store_busy(0, Port::kHeader));
  EXPECT_EQ(mem.store_slots_free(0, Port::kHeader), 0u);
  // One tick accepts both (bandwidth 4): slots free again.
  mem.tick(1);
  EXPECT_FALSE(mem.store_busy(0, Port::kHeader));
  EXPECT_EQ(mem.store_slots_free(0, Port::kHeader), 2u);
  // But the stores are still uncommitted until the latency elapses.
  EXPECT_FALSE(mem.stores_drained());
  for (Cycle t = 2; t <= 2 + fast().header_latency; ++t) mem.tick(t);
  EXPECT_TRUE(mem.stores_drained());
}

TEST(MemorySystem, BandwidthLimitsAcceptancePerCycle) {
  MemoryConfig cfg = fast(4, 4, /*bw=*/2);
  MemorySystem mem(cfg, 4);
  // Four cores each issue one body store in the same cycle.
  for (CoreId c = 0; c < 4; ++c) mem.issue_store(c, Port::kBody, 100 + c);
  mem.tick(1);  // accepts 2 of 4
  std::uint32_t still_waiting = 0;
  for (CoreId c = 0; c < 4; ++c) {
    if (mem.store_slots_free(c, Port::kBody) != MemorySystem::kStoreDepth) {
      ++still_waiting;
    }
  }
  EXPECT_EQ(still_waiting, 2u);
  mem.tick(2);  // accepts the rest
  for (CoreId c = 0; c < 4; ++c) {
    EXPECT_EQ(mem.store_slots_free(c, Port::kBody), MemorySystem::kStoreDepth);
  }
}

TEST(MemorySystem, ComparatorArrayDelaysHeaderLoadBehindSameAddressStore) {
  MemorySystem mem(fast(4, 6), 2);
  Cycle now = 0;
  mem.issue_store(0, Port::kHeader, 500);
  mem.issue_load(1, Port::kHeader, 500);  // same header address
  const Cycle waited = wait_load(mem, 1, Port::kHeader, now);
  // The load may only be accepted after the store commits (header_latency
  // after its acceptance), then takes header_latency itself.
  EXPECT_GE(waited, 2 * fast(4, 6).header_latency);
}

TEST(MemorySystem, IndependentHeaderLoadPassesBlockedOne) {
  MemorySystem mem(fast(4, 6, /*bw=*/1), 3);
  Cycle now = 0;
  mem.issue_store(0, Port::kHeader, 500);
  mem.tick(++now);  // store accepted, committing until now+6
  mem.issue_load(1, Port::kHeader, 500);  // blocked by comparator array
  mem.issue_load(2, Port::kHeader, 777);  // independent: may pass
  Cycle now2 = now;
  MemorySystem* m = &mem;
  // The independent load completes first despite being issued later.
  while (m->load_pending(2, Port::kHeader)) {
    ++now2;
    m->tick(now2);
    ASSERT_LT(now2, 100u);
  }
  EXPECT_TRUE(m->load_pending(1, Port::kHeader))
      << "blocked load must still be waiting when the independent one is done";
  while (m->load_pending(1, Port::kHeader)) {
    ++now2;
    m->tick(now2);
    ASSERT_LT(now2, 100u);
  }
}

TEST(MemorySystem, BodyAccessesAreNeverOrdered) {
  MemorySystem mem(fast(6, 6, /*bw=*/4), 2);
  Cycle now = 0;
  mem.issue_store(0, Port::kBody, 500);
  mem.issue_load(1, Port::kBody, 500);  // same address, body port
  const Cycle waited = wait_load(mem, 1, Port::kBody, now);
  EXPECT_EQ(waited, 6u + 1) << "body loads must not wait for body stores";
}

TEST(MemorySystem, HeaderCacheHitCompletesFast) {
  MemoryConfig cfg = fast(4, 10);
  cfg.header_cache_entries = 64;
  cfg.header_cache_hit_latency = 2;
  MemorySystem mem(cfg, 1);
  Cycle now = 0;
  // First access misses and fills the tag.
  mem.issue_load(0, Port::kHeader, 500);
  const Cycle miss = wait_load(mem, 0, Port::kHeader, now);
  EXPECT_EQ(miss, cfg.header_latency + 1);
  // Second access to the same header hits.
  mem.issue_load(0, Port::kHeader, 500);
  const Cycle hit = wait_load(mem, 0, Port::kHeader, now);
  EXPECT_EQ(hit, cfg.header_cache_hit_latency + 1);
  EXPECT_EQ(mem.header_cache_hits(), 1u);
  EXPECT_EQ(mem.header_cache_misses(), 1u);
}

TEST(MemorySystem, HeaderCacheConflictEvicts) {
  MemoryConfig cfg = fast(4, 10);
  cfg.header_cache_entries = 64;
  MemorySystem mem(cfg, 1);
  Cycle now = 0;
  mem.issue_load(0, Port::kHeader, 500);
  wait_load(mem, 0, Port::kHeader, now);
  // 564 maps to the same direct-mapped slot (500 % 64 == 564 % 64).
  mem.issue_load(0, Port::kHeader, 564);
  wait_load(mem, 0, Port::kHeader, now);
  mem.issue_load(0, Port::kHeader, 500);  // evicted: miss again
  const Cycle again = wait_load(mem, 0, Port::kHeader, now);
  EXPECT_EQ(again, cfg.header_latency + 1);
  EXPECT_EQ(mem.header_cache_hits(), 0u);
}

TEST(MemorySystem, HeaderStoreFillsCacheForLaterLoad) {
  MemoryConfig cfg = fast(4, 10);
  cfg.header_cache_entries = 64;
  cfg.header_cache_hit_latency = 2;
  MemorySystem mem(cfg, 2);
  Cycle now = 0;
  mem.issue_store(0, Port::kHeader, 500);
  // Drain the store fully so the comparator array does not also delay the
  // load (that ordering is tested separately).
  for (Cycle t = 0; t < 20; ++t) mem.tick(++now);
  ASSERT_TRUE(mem.stores_drained());
  mem.issue_load(1, Port::kHeader, 500);
  const Cycle hit = wait_load(mem, 1, Port::kHeader, now);
  EXPECT_EQ(hit, cfg.header_cache_hit_latency + 1)
      << "write-allocate: the store must have installed the tag";
}

TEST(MemorySystem, JitterIsDeterministicAcrossFreshInstances) {
  // Two fresh instances with the same jitter seed must complete identical
  // request streams at identical cycles — the jitter is part of the
  // deterministic replay, not an uncontrolled source of randomness.
  MemoryConfig cfg = fast();
  cfg.latency_jitter = 7;
  cfg.jitter_seed = 123;
  MemorySystem m1(cfg, 2);
  MemorySystem m2(cfg, 2);
  for (int round = 0; round < 20; ++round) {
    Cycle n1 = 0, n2 = 0;
    m1.issue_load(0, Port::kBody, 100 + round);
    m2.issue_load(0, Port::kBody, 100 + round);
    m1.issue_load(1, Port::kHeader, 500 + round);
    m2.issue_load(1, Port::kHeader, 500 + round);
    const Cycle a0 = wait_load(m1, 0, Port::kBody, n1);
    const Cycle b0 = wait_load(m2, 0, Port::kBody, n2);
    EXPECT_EQ(a0, b0) << "round " << round;
    n1 = 0;
    n2 = 0;
    const Cycle a1 = wait_load(m1, 1, Port::kHeader, n1);
    const Cycle b1 = wait_load(m2, 1, Port::kHeader, n2);
    EXPECT_EQ(a1, b1) << "round " << round;
  }
}

TEST(MemorySystem, JitterSeedChangesCompletionTiming) {
  MemoryConfig cfg = fast();
  cfg.latency_jitter = 7;
  cfg.jitter_seed = 1;
  MemoryConfig other = cfg;
  other.jitter_seed = 2;
  MemorySystem m1(cfg, 1);
  MemorySystem m2(other, 1);
  bool diverged = false;
  for (int round = 0; round < 50 && !diverged; ++round) {
    Cycle n1 = 0, n2 = 0;
    m1.issue_load(0, Port::kBody, 100 + round);
    m2.issue_load(0, Port::kBody, 100 + round);
    diverged = wait_load(m1, 0, Port::kBody, n1) !=
               wait_load(m2, 0, Port::kBody, n2);
  }
  EXPECT_TRUE(diverged);
}

TEST(MemorySystem, DrainAndIdle) {
  MemorySystem mem(fast(), 2);
  EXPECT_TRUE(mem.stores_drained());
  EXPECT_TRUE(mem.idle());
  mem.issue_store(1, Port::kBody, 42);
  mem.issue_load(0, Port::kHeader, 43);
  EXPECT_FALSE(mem.stores_drained());
  EXPECT_FALSE(mem.idle());
  for (Cycle t = 1; t < 40; ++t) mem.tick(t);
  EXPECT_TRUE(mem.stores_drained());
  EXPECT_TRUE(mem.idle());
  EXPECT_EQ(mem.requests_issued(), 2u);
}

}  // namespace
}  // namespace hwgc
