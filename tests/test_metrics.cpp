// Measurement-plumbing tests: the counters behind Tables I and II must be
// internally consistent, and the qualitative phenomena the paper reports
// must be visible in them.
#include <gtest/gtest.h>

#include "core/coprocessor.hpp"
#include "heap/verifier.hpp"
#include "workloads/benchmarks.hpp"

namespace hwgc {
namespace {

GcCycleStats run(BenchmarkId id, std::uint32_t cores, double scale = 0.02,
                 SimConfig cfg = SimConfig{}) {
  Workload w = make_benchmark(id, scale);
  cfg.coprocessor.num_cores = cores;
  Coprocessor coproc(cfg, *w.heap);
  return coproc.collect();
}

TEST(Metrics, PerCoreCycleAccountingIsComplete) {
  const GcCycleStats s = run(BenchmarkId::kJavacc, 4);
  for (const auto& core : s.per_core) {
    // Every cycle a core lives through is busy, stalled or idle; the sum
    // can only fall short of total_cycles by the post-halt drain tail.
    const Cycle accounted =
        core.busy_cycles + core.idle_cycles + core.total_stalls();
    EXPECT_LE(accounted, s.total_cycles);
    EXPECT_GE(accounted + 64, s.total_cycles)
        << "unaccounted cycles beyond the flush tail";
  }
}

TEST(Metrics, ObjectCountsBalance) {
  const GcCycleStats s = run(BenchmarkId::kDb, 8);
  std::uint64_t scanned = 0, evacuated = 0;
  for (const auto& core : s.per_core) {
    scanned += core.objects_scanned;
    evacuated += core.objects_evacuated;
  }
  EXPECT_EQ(scanned, evacuated) << "every evacuated object is scanned once";
  EXPECT_EQ(evacuated, s.objects_copied);
  EXPECT_EQ(s.fifo_hits + s.fifo_misses, s.objects_copied)
      << "every scan header comes from the FIFO or from memory";
}

TEST(Metrics, WordsCopiedMatchesLiveSet) {
  Workload w = make_benchmark(BenchmarkId::kJlisp, 0.05);
  const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);
  SimConfig cfg;
  cfg.coprocessor.num_cores = 4;
  Coprocessor coproc(cfg, *w.heap);
  const GcCycleStats s = coproc.collect();
  EXPECT_EQ(s.words_copied, pre.live_words);
}

TEST(Metrics, LinearGraphStarvesWorklistAtHighCoreCounts) {
  const GcCycleStats two = run(BenchmarkId::kSearch, 2, 0.05);
  const GcCycleStats sixteen = run(BenchmarkId::kSearch, 16, 0.05);
  EXPECT_GT(two.worklist_empty_fraction(), 0.5);
  EXPECT_GT(sixteen.worklist_empty_fraction(),
            two.worklist_empty_fraction());
}

TEST(Metrics, ParallelGraphKeepsWorklistFull) {
  const GcCycleStats s = run(BenchmarkId::kDb, 16, 0.05);
  EXPECT_LT(s.worklist_empty_fraction(), 0.05);
}

TEST(Metrics, HubContentionShowsAsHeaderLockStalls) {
  const GcCycleStats javac = run(BenchmarkId::kJavac, 16, 0.05);
  const GcCycleStats db = run(BenchmarkId::kDb, 16, 0.05);
  EXPECT_GT(javac.mean_stall(StallReason::kHeaderLock),
            10 * (db.mean_stall(StallReason::kHeaderLock) + 1));
}

TEST(Metrics, CupOverflowsTheHeaderFifo) {
  const GcCycleStats cup = run(BenchmarkId::kCup, 16, 0.05);
  EXPECT_GT(cup.fifo_overflows, 0u);
  EXPECT_GT(cup.fifo_misses, 0u);
  const GcCycleStats jlisp = run(BenchmarkId::kJlisp, 16, 0.05);
  EXPECT_EQ(jlisp.fifo_overflows, 0u);
}

TEST(Metrics, HigherLatencyImprovesRelativeScaling) {
  // Figure 6's counter-intuitive phenomenon, as a testable property.
  SimConfig base;
  SimConfig slow;
  slow.memory.latency += 20;
  slow.memory.header_latency += 20;
  const double speedup_base =
      static_cast<double>(run(BenchmarkId::kDb, 1, 0.05, base).total_cycles) /
      static_cast<double>(run(BenchmarkId::kDb, 16, 0.05, base).total_cycles);
  const double speedup_slow =
      static_cast<double>(run(BenchmarkId::kDb, 1, 0.05, slow).total_cycles) /
      static_cast<double>(run(BenchmarkId::kDb, 16, 0.05, slow).total_cycles);
  EXPECT_GT(speedup_slow, speedup_base);
}

TEST(Metrics, UncontendedLocksCostNothing) {
  // Section V-C: "synchronization operations incur no clock cycle penalty
  // in the uncontended case" — a single core must report zero lock stalls.
  const GcCycleStats s = run(BenchmarkId::kJavac, 1);
  EXPECT_EQ(s.per_core[0].stall(StallReason::kScanLock), 0u);
  EXPECT_EQ(s.per_core[0].stall(StallReason::kFreeLock), 0u);
  EXPECT_EQ(s.per_core[0].stall(StallReason::kHeaderLock), 0u);
}

TEST(Metrics, EmptyStatsProduceFiniteDerivedValues) {
  // A default (or aborted) stats object must not divide by zero: both
  // derived quantities feed the JSONL schema, which rejects NaN/inf.
  const GcCycleStats s;
  EXPECT_EQ(s.worklist_empty_fraction(), 0.0);
  EXPECT_EQ(s.mean_stall(StallReason::kScanLock), 0.0);
}

TEST(Metrics, WorklistEmptyFractionClampsInconsistentCounters) {
  GcCycleStats s;
  s.total_cycles = 10;
  s.worklist_empty_cycles = 25;  // inconsistent (e.g. aborted mid-update)
  EXPECT_EQ(s.worklist_empty_fraction(), 1.0);
  s.worklist_empty_cycles = 10;  // boundary: every cycle empty
  EXPECT_EQ(s.worklist_empty_fraction(), 1.0);
  s.worklist_empty_cycles = 5;
  EXPECT_EQ(s.worklist_empty_fraction(), 0.5);
}

TEST(Metrics, TotalStallsSaturatesInsteadOfWrapping) {
  // Hardware counters latch at all-ones; the software sum must do the
  // same — a wrapped total would fake "progress" to the watchdog's
  // activity monitor.
  CoreCounters c;
  c.stalls[static_cast<std::size_t>(StallReason::kScanLock)] = ~Cycle{0} - 10;
  c.stalls[static_cast<std::size_t>(StallReason::kBodyLoad)] = 100;
  EXPECT_EQ(c.total_stalls(), ~Cycle{0});
  // Exactly at the ceiling is still representable.
  c.stalls[static_cast<std::size_t>(StallReason::kBodyLoad)] = 10;
  EXPECT_EQ(c.total_stalls(), ~Cycle{0});
  // Comfortably below it, the sum is exact.
  c.stalls[static_cast<std::size_t>(StallReason::kScanLock)] = 7;
  EXPECT_EQ(c.total_stalls(), 17u);
}

TEST(Metrics, StoreStallsAreNegligible) {
  // Table II: store stalls are ~0 everywhere (stores retire on
  // acceptance).
  for (BenchmarkId id : {BenchmarkId::kDb, BenchmarkId::kJavacc}) {
    const GcCycleStats s = run(id, 16, 0.05);
    const double total = static_cast<double>(s.total_cycles);
    EXPECT_LT(s.mean_stall(StallReason::kBodyStore) / total, 0.02)
        << benchmark_name(id);
    EXPECT_LT(s.mean_stall(StallReason::kHeaderStore) / total, 0.02)
        << benchmark_name(id);
  }
}

}  // namespace
}  // namespace hwgc
