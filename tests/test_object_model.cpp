// Unit tests for the object header encoding and field addressing
// (paper Figures 3 and 4).
#include <gtest/gtest.h>

#include "heap/object_model.hpp"

namespace hwgc {
namespace {

TEST(ObjectModel, AttributesRoundTripBasic) {
  const Word attrs = make_attributes(3, 17);
  EXPECT_EQ(pi_of(attrs), 3u);
  EXPECT_EQ(delta_of(attrs), 17u);
  EXPECT_FALSE(is_forwarded(attrs));
  EXPECT_FALSE(is_black(attrs));
}

TEST(ObjectModel, FlagsAreIndependentOfShape) {
  const Word attrs = make_attributes(7, 9);
  const Word fwd = attrs | kForwardedBit;
  const Word blk = attrs | kBlackBit;
  EXPECT_TRUE(is_forwarded(fwd));
  EXPECT_FALSE(is_black(fwd));
  EXPECT_TRUE(is_black(blk));
  EXPECT_FALSE(is_forwarded(blk));
  EXPECT_EQ(pi_of(fwd), 7u);
  EXPECT_EQ(delta_of(fwd), 9u);
  EXPECT_EQ(pi_of(blk), 7u);
  EXPECT_EQ(delta_of(blk), 9u);
}

TEST(ObjectModel, ExtremeShapes) {
  const Word attrs = make_attributes(kMaxPi, kMaxDelta);
  EXPECT_EQ(pi_of(attrs), kMaxPi);
  EXPECT_EQ(delta_of(attrs), kMaxDelta);
  EXPECT_FALSE(is_forwarded(attrs));
  EXPECT_FALSE(is_black(attrs));
  EXPECT_EQ(object_words(attrs), kHeaderWords + kMaxPi + kMaxDelta);

  const Word empty = make_attributes(0, 0);
  EXPECT_EQ(object_words(empty), kHeaderWords);
}

TEST(ObjectModel, FieldAddressing) {
  const Addr obj = 0x1000;
  EXPECT_EQ(attributes_addr(obj), 0x1000u);
  EXPECT_EQ(link_addr(obj), 0x1001u);
  EXPECT_EQ(pointer_field_addr(obj, 0), 0x1002u);
  EXPECT_EQ(pointer_field_addr(obj, 4), 0x1006u);
  // Data area starts right after the pointer area (Figure 3).
  EXPECT_EQ(data_field_addr(obj, /*pi=*/5, /*j=*/0), 0x1007u);
  EXPECT_EQ(data_field_addr(obj, 5, 2), 0x1009u);
}

// Property sweep: encode/decode is lossless for every (pi, delta) on a
// coarse lattice covering the full encodable range.
class AttributeRoundTrip
    : public ::testing::TestWithParam<std::tuple<Word, Word>> {};

TEST_P(AttributeRoundTrip, Lossless) {
  const auto [pi, delta] = GetParam();
  for (Word flags : {Word{0}, kForwardedBit, kBlackBit,
                     Word{kForwardedBit | kBlackBit}}) {
    const Word attrs = make_attributes(pi, delta, flags);
    EXPECT_EQ(pi_of(attrs), pi);
    EXPECT_EQ(delta_of(attrs), delta);
    EXPECT_EQ(is_forwarded(attrs), (flags & kForwardedBit) != 0);
    EXPECT_EQ(is_black(attrs), (flags & kBlackBit) != 0);
    EXPECT_EQ(object_words(attrs), kHeaderWords + pi + delta);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Lattice, AttributeRoundTrip,
    ::testing::Combine(::testing::Values(0u, 1u, 2u, 63u, 1024u, kMaxPi),
                       ::testing::Values(0u, 1u, 7u, 255u, 65536u,
                                         kMaxDelta)));

}  // namespace
}  // namespace hwgc
