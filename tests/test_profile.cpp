// Cycle attribution (src/profile/): the exclusive stall taxonomy, the
// binding rule, fast-forward absorption, and the validator identities —
// every cycle of every core lands in exactly one class, per core the
// class totals sum to the collection's elapsed cycles, and the critical
// (binding) stream tiles [0, total_cycles) with no gaps.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/coprocessor.hpp"
#include "profile/critical_path.hpp"
#include "profile/cycle_profiler.hpp"
#include "profile/profile_metrics.hpp"
#include "runtime/runtime.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/mutator.hpp"

namespace hwgc {
namespace {

std::size_t idx(StallClass c) { return static_cast<std::size_t>(c); }

CycleProfile profile_one(BenchmarkId id, std::uint32_t cores,
                         bool fast_forward, GcCycleStats* stats_out = nullptr) {
  Workload w = make_benchmark(id, 0.05, 42);
  SimConfig cfg;
  cfg.coprocessor.num_cores = cores;
  cfg.coprocessor.fast_forward = fast_forward;
  cfg.heap.semispace_words = w.heap->layout().semispace_words();
  Coprocessor coproc(cfg, *w.heap);
  CycleProfiler profiler;
  const GcCycleStats stats =
      coproc.collect(nullptr, nullptr, nullptr, nullptr, &profiler);
  if (stats_out != nullptr) *stats_out = stats;
  return profiler.take_profile();
}

// --- the taxonomy ----------------------------------------------------------

TEST(StallTaxonomy, EveryStallReasonMapsToExactlyOneClass) {
  for (std::size_t r = 1; r < kStallReasonCount; ++r) {
    const StallClass c = class_of(static_cast<StallReason>(r));
    EXPECT_LT(idx(c), kStallClassCount);
    EXPECT_NE(c, StallClass::kCompute)
        << "a stalled cycle can never be attributed to compute";
  }
  EXPECT_EQ(class_of(StallReason::kScanLock), StallClass::kSbScanWait);
  EXPECT_EQ(class_of(StallReason::kHeaderStore),
            StallClass::kFifoBackpressure);
  EXPECT_EQ(class_of(StallReason::kBodyLoad), StallClass::kMemPort);
  EXPECT_EQ(class_of(StallReason::kBodyStore), StallClass::kMemPort);
}

TEST(StallTaxonomy, NamesAreUniqueAndKnown) {
  for (std::size_t i = 0; i < kStallClassCount; ++i) {
    for (std::size_t j = i + 1; j < kStallClassCount; ++j) {
      EXPECT_NE(to_string(static_cast<StallClass>(i)),
                to_string(static_cast<StallClass>(j)));
      EXPECT_NE(field_suffix(static_cast<StallClass>(i)),
                field_suffix(static_cast<StallClass>(j)));
    }
  }
}

// --- the binding rule -------------------------------------------------------

TEST(CycleProfiler, BindingRulePerCycle) {
  CycleProfiler p;
  p.begin_collection(3);

  // Any compute wins, whatever the other cores report.
  p.record_work(0);
  p.record_stall(1, StallReason::kScanLock);
  p.record_idle(2);
  p.end_cycle();

  // No compute: most-populous class among clocked cores binds...
  p.record_stall(0, StallReason::kBodyLoad);
  p.record_stall(1, StallReason::kBodyLoad);
  p.record_idle(2);
  p.end_cycle();

  // ...ties break toward the smaller enum value (scan-wait over mem-port).
  p.record_stall(0, StallReason::kBodyLoad);
  p.record_stall(1, StallReason::kScanLock);
  p.end_cycle();  // core 2 unreported -> idle-deconfigured

  // No clocked core at all: idle-deconfigured binds...
  p.end_cycle();

  // ...except the store-drain window, which the memory ports bind.
  p.drain_cycle();

  p.end_collection();
  const CycleProfile prof = p.take_profile();

  ASSERT_EQ(prof.total_cycles, 5u);
  ASSERT_EQ(prof.segments.size(), 5u);
  EXPECT_EQ(prof.segments[0].binding, StallClass::kCompute);
  EXPECT_EQ(prof.segments[1].binding, StallClass::kMemPort);
  EXPECT_EQ(prof.segments[2].binding, StallClass::kSbScanWait);
  EXPECT_EQ(prof.segments[3].binding, StallClass::kIdleDeconfigured);
  EXPECT_EQ(prof.segments[4].binding, StallClass::kMemPort);

  // Per-core exhaustiveness: unreported cores were charged deconfigured.
  EXPECT_EQ(prof.per_core[2][idx(StallClass::kWorklistStarved)], 2u);
  EXPECT_EQ(prof.per_core[2][idx(StallClass::kIdleDeconfigured)], 3u);
  std::string err;
  EXPECT_TRUE(validate_cycle_profile(prof, &err)) << err;
}

TEST(CycleProfiler, AbsorbEqualsRepeatedEndCycle) {
  // absorb(cls, k) must be exactly equivalent to k end_cycle() calls with
  // the same per-core reports — the fast-forward soundness argument.
  CycleProfiler bulk, ticked;
  bulk.begin_collection(3);
  ticked.begin_collection(3);

  const std::vector<StallClass> window = {StallClass::kSbScanWait,
                                          StallClass::kWorklistStarved,
                                          StallClass::kIdleDeconfigured};
  bulk.absorb(window, 7);
  for (int i = 0; i < 7; ++i) {
    ticked.record_stall(0, StallReason::kScanLock);
    ticked.record_idle(1);
    ticked.end_cycle();  // core 2 unreported
  }
  bulk.absorb_drain(4);
  for (int i = 0; i < 4; ++i) ticked.drain_cycle();

  bulk.end_collection();
  ticked.end_collection();
  EXPECT_EQ(bulk.take_profile(), ticked.take_profile());
}

TEST(CycleProfiler, MarkUnprofiledYieldsValidEmptyHistorySlot) {
  CycleProfiler p;
  p.begin_collection(4);
  p.record_work(0);
  p.end_cycle();
  p.mark_unprofiled();  // recovery's sequential fallback discards all that
  const CycleProfile prof = p.take_profile();
  EXPECT_FALSE(prof.valid);
  EXPECT_EQ(prof.total_cycles, 0u);
  std::string err;
  EXPECT_TRUE(validate_cycle_profile(prof, &err)) << err;

  ProfileAttribution a;
  a.add(prof);
  EXPECT_EQ(a.collections, 1u);
  EXPECT_EQ(a.unprofiled, 1u);
  EXPECT_EQ(a.core_cycles, 0u);
}

// --- real collections: exactness across the benchmark matrix ---------------

TEST(CycleProfiler, AttributionIsExactAcrossBenchmarks) {
  for (BenchmarkId id : {all_benchmarks()[0], all_benchmarks()[2]}) {
    for (std::uint32_t cores : {1u, 4u, 8u}) {
      GcCycleStats stats;
      const CycleProfile prof = profile_one(id, cores, true, &stats);
      ASSERT_TRUE(prof.valid);
      EXPECT_EQ(prof.cores, cores);
      EXPECT_EQ(prof.total_cycles, stats.total_cycles)
          << "profiled cycles must equal the collection's elapsed cycles";
      std::string err;
      EXPECT_TRUE(validate_cycle_profile(prof, &err))
          << benchmark_name(id) << "/" << cores << "c: " << err;

      // The headline identity, spelled out: per core, the class totals
      // sum to the elapsed cycles — no cycle unattributed, none twice.
      for (std::size_t c = 0; c < prof.per_core.size(); ++c) {
        Cycle sum = 0;
        for (std::size_t k = 0; k < kStallClassCount; ++k) {
          sum += prof.per_core[c][k];
        }
        EXPECT_EQ(sum, prof.total_cycles) << "core " << c;
      }
    }
  }
}

TEST(CycleProfiler, FastForwardProfileIsBitIdentical) {
  // Counter-equivalence with profiling enabled: the absorbed quiescent
  // windows must reproduce the ticked run's profile exactly.
  for (std::uint32_t cores : {1u, 4u}) {
    GcCycleStats ticked_stats, ff_stats;
    const CycleProfile ticked =
        profile_one(all_benchmarks()[2], cores, false, &ticked_stats);
    const CycleProfile ff =
        profile_one(all_benchmarks()[2], cores, true, &ff_stats);
    EXPECT_EQ(ticked_stats.total_cycles, ff_stats.total_cycles);
    EXPECT_EQ(ticked, ff) << cores << " cores";
  }
}

// --- critical path ----------------------------------------------------------

TEST(CriticalPath, ReportMatchesProfile) {
  const CycleProfile prof = profile_one(all_benchmarks()[2], 8, true);
  const CriticalPathReport rep = critical_path(prof);
  ASSERT_TRUE(rep.valid);
  EXPECT_EQ(rep.total_cycles, prof.total_cycles);
  EXPECT_EQ(rep.binding, prof.binding());
  EXPECT_DOUBLE_EQ(rep.binding_share, prof.binding_share());
  EXPECT_EQ(rep.chain_length, prof.segments.size());
  EXPECT_LE(rep.longest_run.length, prof.total_cycles);
  EXPECT_GT(rep.longest_run.length, 0u);
  EXPECT_NE(rep.summary().find("bound by"), std::string::npos);
}

TEST(CriticalPath, ValidatorRejectsTamperedProfiles) {
  CycleProfile prof = profile_one(all_benchmarks()[2], 4, true);
  std::string err;
  ASSERT_TRUE(validate_cycle_profile(prof, &err)) << err;

  CycleProfile leak = prof;  // a cycle leaks out of one core's totals
  leak.per_core[0][idx(StallClass::kCompute)] -= 1;
  EXPECT_FALSE(validate_cycle_profile(leak, &err));

  CycleProfile torn = prof;  // the binding stream no longer tiles [0, total)
  torn.segments.pop_back();
  EXPECT_FALSE(validate_cycle_profile(torn, &err));

  CycleProfile ghost = prof;  // an invalid profile must carry no cycles
  ghost.valid = false;
  EXPECT_FALSE(validate_cycle_profile(ghost, &err));
}

// --- runtime plumbing -------------------------------------------------------

TEST(RuntimeProfiling, HistoryAlignsWithGcHistory) {
  SimConfig cfg;
  cfg.coprocessor.num_cores = 4;
  Runtime rt(4096, cfg);
  rt.enable_profiling();
  EXPECT_TRUE(rt.profiling_enabled());

  ShadowMutator::Config mcfg;
  mcfg.seed = 3;
  ShadowMutator mut(mcfg);
  for (int i = 0; i < 3; ++i) {
    mut.run(rt, 200);
    rt.collect();
  }
  ASSERT_EQ(rt.profile_history().size(), rt.gc_history().size());
  for (std::size_t i = 0; i < rt.profile_history().size(); ++i) {
    const CycleProfile& p = rt.profile_history()[i];
    ASSERT_TRUE(p.valid);
    EXPECT_EQ(p.total_cycles, rt.gc_history()[i].total_cycles)
        << "profile " << i << " out of step with its collection";
    std::string err;
    EXPECT_TRUE(validate_cycle_profile(p, &err)) << err;
  }
}

TEST(RuntimeProfiling, DisabledKeepsHistoryEmpty) {
  SimConfig cfg;
  cfg.coprocessor.num_cores = 4;
  Runtime rt(4096, cfg);
  ShadowMutator::Config mcfg;
  mcfg.seed = 3;
  ShadowMutator mut(mcfg);
  mut.run(rt, 200);
  rt.collect();
  EXPECT_FALSE(rt.profiling_enabled());
  EXPECT_TRUE(rt.profile_history().empty());
}

}  // namespace
}  // namespace hwgc
