// hwgc-profile-v1 JSONL: attribution + span emission, the validator's
// identities (shares sum to totals, binding is the critical maximum, span
// trees are well-formed), the file-level duplicate-span gate, the
// regression comparator behind CI's profile-smoke job, and a golden-file
// pin of the exact bytes (regenerate with HWGC_REGEN_GOLDEN=1).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "profile/profile_metrics.hpp"
#include "profile/request_trace.hpp"
#include "service/heap_service.hpp"
#include "service/service_metrics.hpp"

namespace hwgc {
namespace {

/// Small deterministic profiled fleet run every test shares. The tight
/// semispace forces collections so the attribution records carry cycles.
const HeapService& mini_profiled_service() {
  static HeapService* service = [] {
    ServiceConfig cfg;
    cfg.shards = 2;
    cfg.semispace_words = 2048;
    cfg.sim.coprocessor.num_cores = 4;
    cfg.traffic.seed = 5;
    cfg.scheduler = GcSchedulerKind::kProactive;
    cfg.profile.enabled = true;
    cfg.profile.exemplars = 3;
    auto* s = new HeapService(cfg);
    s->serve(1500);
    return s;
  }();
  return *service;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

std::string replace_field(const std::string& line, const std::string& key,
                          const std::string& replacement) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  EXPECT_NE(at, std::string::npos) << key;
  const std::size_t start = at + needle.size();
  std::size_t end = start;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(0, start) + replacement + line.substr(end);
}

/// First attribution line of the mini run (known-good tamper target).
std::string attribution_line() {
  const auto lines = lines_of(profile_report_jsonl(mini_profiled_service(),
                                                   "t"));
  for (const auto& l : lines) {
    if (l.find("\"kind\":\"attribution\"") != std::string::npos) return l;
  }
  ADD_FAILURE() << "no attribution record emitted";
  return {};
}

/// First span line of the mini run.
std::string span_line(const char* name = nullptr) {
  const auto lines = lines_of(profile_report_jsonl(mini_profiled_service(),
                                                   "t"));
  for (const auto& l : lines) {
    if (l.find("\"kind\":\"span\"") == std::string::npos) continue;
    if (name == nullptr ||
        l.find("\"name\":\"" + std::string(name) + "\"") !=
            std::string::npos) {
      return l;
    }
  }
  ADD_FAILURE() << "no span record emitted";
  return {};
}

TEST(ProfileJsonl, MiniRunEmitsValidRecordsOfBothKinds) {
  const auto lines = lines_of(profile_report_jsonl(mini_profiled_service(),
                                                   "t"));
  std::size_t attributions = 0, spans = 0;
  ProfileSpanChecker dup;
  for (const auto& line : lines) {
    std::string err;
    EXPECT_TRUE(validate_profile_jsonl_line(line, &err)) << err << "\n"
                                                         << line;
    EXPECT_TRUE(dup.check(line, &err)) << err;
    attributions +=
        line.find("\"kind\":\"attribution\"") != std::string::npos ? 1 : 0;
    spans += line.find("\"kind\":\"span\"") != std::string::npos ? 1 : 0;
  }
  EXPECT_EQ(attributions, mini_profiled_service().shard_count());
  EXPECT_GT(spans, 0u) << "exemplar capture produced no span trees";
}

// --- negative validator cases (the bench_validate gate) ---------------------

TEST(ProfileJsonl, ValidatorRejectsUnknownStallClass) {
  std::string err;
  EXPECT_FALSE(validate_profile_jsonl_line(
      replace_field(attribution_line(), "binding", "\"warp-core\""), &err));
  EXPECT_NE(err.find("unknown stall class"), std::string::npos) << err;
}

TEST(ProfileJsonl, ValidatorRejectsSharesNotSummingToTotal) {
  std::string err;
  EXPECT_FALSE(validate_profile_jsonl_line(
      replace_field(attribution_line(), "cls_compute", "1"), &err));
  EXPECT_NE(err.find("sum(cls_*)"), std::string::npos) << err;
}

TEST(ProfileJsonl, ValidatorRejectsCriticalSharesNotSummingToTotal) {
  std::string err;
  EXPECT_FALSE(validate_profile_jsonl_line(
      replace_field(attribution_line(), "crit_compute", "1"), &err));
  EXPECT_NE(err.find("sum(crit_*)"), std::string::npos) << err;
}

TEST(ProfileJsonl, ValidatorRejectsUnprofiledExceedingCollections) {
  std::string err;
  EXPECT_FALSE(validate_profile_jsonl_line(
      replace_field(attribution_line(), "unprofiled", "999"), &err));
  EXPECT_NE(err.find("unprofiled"), std::string::npos) << err;
}

TEST(ProfileJsonl, ValidatorRejectsSpanRangeOutOfOrder) {
  std::string err;
  EXPECT_FALSE(validate_profile_jsonl_line(
      replace_field(span_line(), "begin_cycle", "99999999999"), &err));
  EXPECT_NE(err.find("out of order"), std::string::npos) << err;
}

TEST(ProfileJsonl, ValidatorRejectsParentNotPrecedingSpan) {
  std::string err;
  EXPECT_FALSE(validate_profile_jsonl_line(
      replace_field(span_line("service"), "parent", "99"), &err));
  EXPECT_NE(err.find("parent"), std::string::npos) << err;
}

TEST(ProfileJsonl, ValidatorRejectsUnknownSpanName) {
  std::string err;
  EXPECT_FALSE(validate_profile_jsonl_line(
      replace_field(span_line(), "name", "\"teleport\""), &err));
  EXPECT_NE(err.find("unknown span name"), std::string::npos) << err;
}

TEST(ProfileJsonl, ValidatorRejectsGcLinkOnNonChargeSpan) {
  std::string err;
  EXPECT_FALSE(validate_profile_jsonl_line(
      replace_field(span_line("service"), "gc_collection", "3"), &err));
  EXPECT_NE(err.find("gc-charge"), std::string::npos) << err;
}

TEST(ProfileJsonl, ValidatorRejectsUnknownKind) {
  std::string err;
  EXPECT_FALSE(validate_profile_jsonl_line(
      replace_field(attribution_line(), "kind", "\"summary\""), &err));
  EXPECT_NE(err.find("kind"), std::string::npos) << err;
}

TEST(ProfileJsonl, DuplicateSpanIdsAreAFileLevelViolation) {
  const std::string line = span_line();
  ProfileSpanChecker dup;
  std::string err;
  EXPECT_TRUE(dup.check(line, &err));
  EXPECT_FALSE(dup.check(line, &err)) << "second sighting must fail";
  EXPECT_NE(err.find("duplicate span id"), std::string::npos) << err;

  // And through the file validator / bench_validate path.
  const std::string path = temp_path("dup_span.json");
  {
    std::ofstream f(path, std::ios::binary);
    f << line << "\n" << line << "\n";
  }
  std::vector<std::string> errors;
  EXPECT_FALSE(validate_profile_jsonl_file(path, &errors));
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("duplicate span id"), std::string::npos);
  errors.clear();
  EXPECT_FALSE(validate_metrics_jsonl_file(path, &errors));
  std::remove(path.c_str());
}

// --- mixed-schema dispatch --------------------------------------------------

TEST(ProfileJsonl, MixedServiceAndProfileFileValidates) {
  const std::string path = temp_path("mixed_profile.json");
  ASSERT_TRUE(write_service_jsonl(mini_profiled_service(), path, "t", false));
  ASSERT_TRUE(write_profile_jsonl(mini_profiled_service(), path, "t", true));
  std::vector<std::string> errors;
  EXPECT_TRUE(validate_metrics_jsonl_file(path, &errors))
      << (errors.empty() ? "" : errors.front());
  // The profile-only validator must reject the service section's lines.
  EXPECT_FALSE(validate_profile_jsonl_file(path, nullptr));
  std::remove(path.c_str());
}

// --- the regression comparator ----------------------------------------------

/// Hand-built attribution whose identities hold: 2 cores x 50 cycles.
ProfileAttribution synthetic(Cycle compute, Cycle scan_wait) {
  ProfileAttribution a;
  a.source = "synthetic";
  a.shard = -1;
  a.cores = 2;
  a.collections = 1;
  a.total_cycles = (compute + scan_wait) / 2;
  a.core_cycles = compute + scan_wait;
  a.cls[static_cast<std::size_t>(StallClass::kCompute)] = compute;
  a.cls[static_cast<std::size_t>(StallClass::kSbScanWait)] = scan_wait;
  a.crit[static_cast<std::size_t>(StallClass::kCompute)] = a.total_cycles;
  return a;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::binary);
  f << text;
}

TEST(ProfileComparator, IdenticalFilesAgree) {
  const std::string base = temp_path("cmp_base.json");
  write_file(base, profile_attribution_jsonl(synthetic(80, 20), "t"));
  std::vector<std::string> errors;
  EXPECT_TRUE(compare_profile_baselines(base, base, 0.01, &errors))
      << (errors.empty() ? "" : errors.front());
  std::remove(base.c_str());
}

TEST(ProfileComparator, FlagsShareDriftBeyondTolerance) {
  const std::string base = temp_path("cmp_base2.json");
  const std::string cur = temp_path("cmp_cur2.json");
  write_file(base, profile_attribution_jsonl(synthetic(80, 20), "t"));
  write_file(cur, profile_attribution_jsonl(synthetic(70, 30), "t"));
  // compute's share moved 0.80 -> 0.70: outside 0.05, inside 0.15.
  std::vector<std::string> errors;
  EXPECT_FALSE(compare_profile_baselines(base, cur, 0.05, &errors));
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("share moved"), std::string::npos);
  EXPECT_TRUE(compare_profile_baselines(base, cur, 0.15, nullptr));
  std::remove(base.c_str());
  std::remove(cur.c_str());
}

TEST(ProfileComparator, FlagsBindingResourceChange) {
  ProfileAttribution flipped = synthetic(80, 20);
  flipped.crit[static_cast<std::size_t>(StallClass::kCompute)] = 0;
  flipped.crit[static_cast<std::size_t>(StallClass::kSbScanWait)] =
      flipped.total_cycles;
  const std::string base = temp_path("cmp_base3.json");
  const std::string cur = temp_path("cmp_cur3.json");
  write_file(base, profile_attribution_jsonl(synthetic(80, 20), "t"));
  write_file(cur, profile_attribution_jsonl(flipped, "t"));
  std::vector<std::string> errors;
  EXPECT_FALSE(compare_profile_baselines(base, cur, 1.0, &errors))
      << "a binding flip must fail at any share tolerance";
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("binding resource changed"),
            std::string::npos);
  std::remove(base.c_str());
  std::remove(cur.c_str());
}

TEST(ProfileComparator, FlagsMissingAndExtraRecords) {
  ProfileAttribution other = synthetic(80, 20);
  other.source = "other";
  const std::string base = temp_path("cmp_base4.json");
  const std::string cur = temp_path("cmp_cur4.json");
  write_file(base, profile_attribution_jsonl(synthetic(80, 20), "t") +
                       profile_attribution_jsonl(other, "t"));
  write_file(cur, profile_attribution_jsonl(synthetic(80, 20), "t"));
  std::vector<std::string> errors;
  EXPECT_FALSE(compare_profile_baselines(base, cur, 0.5, &errors));
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("missing"), std::string::npos);

  errors.clear();
  EXPECT_FALSE(compare_profile_baselines(cur, base, 0.5, &errors));
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("not present in baseline"),
            std::string::npos);
  std::remove(base.c_str());
  std::remove(cur.c_str());
}

// --- golden file ------------------------------------------------------------
// Pins the exact bytes of the mini profiled run's report. Regenerate with:
//   HWGC_REGEN_GOLDEN=1 ./test_profile_metrics
// then commit tests/golden/profile_mini.json — a diff there is a schema or
// determinism change and must be intentional.

TEST(ProfileJsonl, GoldenReportStable) {
  const std::string text =
      profile_report_jsonl(mini_profiled_service(), "golden");
  const std::string path =
      std::string(HWGC_GOLDEN_DIR) + "/profile_mini.json";
  if (std::getenv("HWGC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << text;
    ASSERT_TRUE(out.good()) << "failed to regenerate " << path;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — regenerate with HWGC_REGEN_GOLDEN=1";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), text)
      << "profile JSONL drifted from tests/golden/profile_mini.json; if "
         "intended, HWGC_REGEN_GOLDEN=1 and commit";
}

}  // namespace
}  // namespace hwgc
