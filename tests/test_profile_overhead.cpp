// Pay-for-use proof for the profiling subsystem: attaching a CycleProfiler
// (or enabling service-level profiling) must be pure observation — the
// simulated cycle counts, signal traces, schedule traces and service JSONL
// are byte-identical with and without it, across the conformance matrix
// seeds. The golden pin ties the profiled run to the pre-profiler bytes in
// tests/golden/service_mini.json.
#include <gtest/gtest.h>

#include <cstdio>
#include <deque>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/coprocessor.hpp"
#include "core/schedule_policy.hpp"
#include "profile/cycle_profiler.hpp"
#include "service/heap_service.hpp"
#include "service/service_metrics.hpp"
#include "workloads/benchmarks.hpp"

namespace hwgc {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct Observed {
  GcCycleStats stats;
  std::string signal_csv;
  std::uint64_t schedule_cycles = 0;
  std::deque<std::pair<Cycle, std::vector<CoreId>>> schedule_tail;
};

Observed run(BenchmarkId id, std::uint64_t seed, std::uint32_t cores,
             bool fast_forward, bool with_profiler) {
  Workload w = make_benchmark(id, 0.05, seed);
  SimConfig cfg;
  cfg.coprocessor.num_cores = cores;
  cfg.coprocessor.fast_forward = fast_forward;
  cfg.heap.semispace_words = w.heap->layout().semispace_words();
  Coprocessor coproc(cfg, *w.heap);
  SignalTrace signals;
  ScheduleTrace schedule;
  CycleProfiler profiler;
  Observed o;
  o.stats = coproc.collect(&signals, &schedule, nullptr, nullptr,
                           with_profiler ? &profiler : nullptr);
  const std::string path = temp_path("overhead_signals.csv");
  EXPECT_TRUE(signals.write_csv(path));
  o.signal_csv = file_bytes(path);
  std::remove(path.c_str());
  o.schedule_cycles = schedule.cycles_recorded();
  o.schedule_tail = schedule.orders();
  return o;
}

TEST(ProfileOverhead, TracesAndStatsIdenticalAcrossMatrix) {
  for (std::uint64_t seed : {11ull, 42ull}) {
    for (std::uint32_t cores : {1u, 4u, 8u}) {
      for (bool ff : {false, true}) {
        const BenchmarkId id = all_benchmarks()[seed % 3];
        const Observed off = run(id, seed, cores, ff, false);
        const Observed on = run(id, seed, cores, ff, true);
        const std::string tag = std::string(benchmark_name(id)) + "/" +
                                std::to_string(cores) + "c seed " +
                                std::to_string(seed) +
                                (ff ? " ff" : " ticked");
        EXPECT_EQ(off.stats.total_cycles, on.stats.total_cycles) << tag;
        EXPECT_EQ(off.stats.objects_copied, on.stats.objects_copied) << tag;
        EXPECT_EQ(off.stats.words_copied, on.stats.words_copied) << tag;
        EXPECT_EQ(off.stats.mem_requests, on.stats.mem_requests) << tag;
        EXPECT_EQ(off.stats.fifo_hits, on.stats.fifo_hits) << tag;
        EXPECT_EQ(off.signal_csv, on.signal_csv)
            << tag << ": SignalTrace bytes drifted under profiling";
        EXPECT_EQ(off.schedule_cycles, on.schedule_cycles) << tag;
        EXPECT_EQ(off.schedule_tail, on.schedule_tail)
            << tag << ": ScheduleTrace drifted under profiling";
      }
    }
  }
}

/// The exact configuration pinned by tests/golden/service_mini.json.
HeapService* mini_service(bool profiled) {
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.semispace_words = 4096;
  cfg.sim.coprocessor.num_cores = 4;
  cfg.traffic.seed = 5;
  cfg.scheduler = GcSchedulerKind::kProactive;
  cfg.profile.enabled = profiled;
  auto* s = new HeapService(cfg);
  s->serve(1500);
  return s;
}

TEST(ProfileOverhead, ServiceJsonlIdenticalWithProfilingEnabled) {
  HeapService* off = mini_service(false);
  HeapService* on = mini_service(true);
  EXPECT_EQ(service_report_jsonl(*off, "t"), service_report_jsonl(*on, "t"))
      << "enabling profiling changed the service-v1 report bytes";
  const SloStats a = off->fleet_stats(), b = on->fleet_stats();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.gc_cycle_total, b.gc_cycle_total);
  EXPECT_EQ(a.latency.sum(), b.latency.sum());
  delete off;
  delete on;
}

TEST(ProfileOverhead, ProfiledRunStillMatchesPrePRGolden) {
  // tests/golden/service_mini.json was pinned before the profiler existed
  // (and is re-verified by test_service_metrics without profiling); the
  // profiled run of the same configuration must reproduce it byte-for-byte.
  HeapService* on = mini_service(true);
  const std::string path =
      std::string(HWGC_GOLDEN_DIR) + "/service_mini.json";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), service_report_jsonl(*on, "golden"))
      << "profiling perturbed the pinned service report";
  delete on;
}

}  // namespace
}  // namespace hwgc
