// Fleet request tracing: span-tree completeness (the five phases tile the
// request's latency exactly), gc-charge links that resolve into the
// charged shard's collection history, deterministic top-K exemplar
// capture, and byte-identical profile JSONL / flame exports between the
// serial conductor and the shard pool at 1/2/4/8 host threads.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "profile/request_trace.hpp"
#include "service/heap_service.hpp"
#include "service/service_metrics.hpp"

namespace hwgc {
namespace {

ServiceConfig profiled_config(std::size_t host_threads) {
  ServiceConfig cfg;
  cfg.shards = 4;
  cfg.semispace_words = 2048;
  cfg.sim.coprocessor.num_cores = 2;
  cfg.traffic.seed = 7;
  cfg.scheduler = GcSchedulerKind::kReactive;
  cfg.profile.enabled = true;
  cfg.profile.exemplars = 4;
  cfg.host_threads = host_threads;
  return cfg;
}

std::unique_ptr<HeapService> run_profiled(std::size_t host_threads) {
  auto s = std::make_unique<HeapService>(profiled_config(host_threads));
  s->serve(4000);
  return s;
}

const HeapService& serial_run() {
  static HeapService* s = run_profiled(1).release();
  return *s;
}

/// Finds the child span with `name` (phases are unique per tree).
const SpanRecord* phase(const std::vector<SpanRecord>& spans,
                        const char* name) {
  for (const auto& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(RequestTracing, CaptureIsBoundedAndSorted) {
  const auto top = serial_run().slowest_requests();
  ASSERT_FALSE(top.empty());
  EXPECT_LE(top.size(), serial_run().config().profile.exemplars);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_TRUE(RequestExemplar::slower(top[i - 1], top[i]) ||
                (top[i - 1].latency() == top[i].latency() &&
                 top[i - 1].request_id < top[i].request_id))
        << "exemplars out of deterministic order at " << i;
  }
}

TEST(RequestTracing, SpanTreesAreCompleteAndTileTheLatency) {
  const auto top = serial_run().slowest_requests();
  ASSERT_FALSE(top.empty());
  for (const RequestExemplar& e : top) {
    const std::vector<SpanRecord> spans = exemplar_spans(e);
    ASSERT_GE(spans.size(), 6u);  // root + 5 phases, plus charges/hops

    // Root covers [arrival, completion]; ids are 1..N with parents first.
    EXPECT_EQ(spans.front().name, "request");
    EXPECT_EQ(spans.front().span, 1u);
    EXPECT_EQ(spans.front().parent, 0u);
    EXPECT_EQ(spans.front().begin, e.arrival);
    EXPECT_EQ(spans.front().end, e.completion);
    for (std::size_t i = 0; i < spans.size(); ++i) {
      EXPECT_EQ(spans[i].span, i + 1) << "span ids must be dense";
      if (i > 0) {
        EXPECT_LT(spans[i].parent, spans[i].span);
      }
      std::string err;
      EXPECT_TRUE(validate_profile_jsonl_line(
          span_record_jsonl(spans[i], "t"), &err))
          << err;
    }

    // The five phases are always present and consecutive: their lengths
    // sum to the request's latency exactly (the §12 identity, per span).
    const SpanRecord* adm = phase(spans, "admission");
    const SpanRecord* queue = phase(spans, "queue");
    const SpanRecord* inh = phase(spans, "gc-inherited");
    const SpanRecord* own = phase(spans, "gc-own");
    const SpanRecord* srv = phase(spans, "service");
    ASSERT_TRUE(adm && queue && inh && own && srv);
    EXPECT_EQ(adm->begin, e.arrival);
    EXPECT_EQ(queue->begin, adm->end);
    EXPECT_EQ(inh->begin, queue->end);
    EXPECT_EQ(own->begin, inh->end);
    EXPECT_EQ(srv->begin, own->end);
    EXPECT_EQ(srv->end, e.completion);
    const Cycle tiled = (adm->end - adm->begin) + (queue->end - queue->begin) +
                        (inh->end - inh->begin) + (own->end - own->begin) +
                        (srv->end - srv->begin);
    EXPECT_EQ(tiled, e.latency())
        << "request " << e.request_id << ": phases do not tile the latency";
    EXPECT_EQ(srv->end - srv->begin, e.service);
    EXPECT_EQ(own->end - own->begin, e.own_gc);
  }
}

TEST(RequestTracing, GcChargesLinkIntoCollectionHistory) {
  const HeapService& s = serial_run();
  const auto top = s.slowest_requests();
  std::size_t charges = 0;
  for (const RequestExemplar& e : top) {
    ASSERT_LT(e.shard, s.shard_count());
    const auto& history = s.runtime(e.shard).gc_history();
    for (const auto& list : {e.own, e.inherited}) {
      for (const GcCharge& c : list) {
        ++charges;
        ASSERT_GE(c.collection, 0);
        ASSERT_LT(static_cast<std::size_t>(c.collection), history.size())
            << "gc-charge links a collection the shard never ran";
        EXPECT_EQ(c.cycles,
                  history[static_cast<std::size_t>(c.collection)]
                      .total_cycles)
            << "charge cycles must be the linked collection's cycles";
      }
    }
    // Own charges account for the whole own_gc phase.
    Cycle own_sum = 0;
    for (const GcCharge& c : e.own) own_sum += c.cycles;
    EXPECT_EQ(own_sum, e.own_gc);
  }
  EXPECT_GT(charges, 0u)
      << "a 2048-word fleet under 4000 requests must capture GC charges";
}

TEST(RequestTracing, ProfileExportsAreByteIdenticalAcrossHostThreads) {
  const std::string serial_jsonl =
      profile_report_jsonl(serial_run(), "det");
  std::string serial_flame;
  {
    const std::string path =
        std::string(::testing::TempDir()) + "flame_serial.json";
    ASSERT_TRUE(write_exemplar_flame(serial_run().slowest_requests(), path));
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    serial_flame = buf.str();
    std::remove(path.c_str());
  }
  EXPECT_FALSE(serial_jsonl.empty());
  EXPECT_FALSE(serial_flame.empty());

  for (std::size_t threads : {2u, 4u, 8u}) {
    const auto pool = run_profiled(threads);
    EXPECT_EQ(profile_report_jsonl(*pool, "det"), serial_jsonl)
        << threads << " host threads: profile JSONL diverged from serial";
    const std::string path = std::string(::testing::TempDir()) + "flame_" +
                             std::to_string(threads) + ".json";
    ASSERT_TRUE(write_exemplar_flame(pool->slowest_requests(), path));
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), serial_flame)
        << threads << " host threads: flame bytes diverged from serial";
    std::remove(path.c_str());
  }
}

TEST(RequestTracing, InsertExemplarKeepsTopKDeterministic) {
  std::vector<RequestExemplar> top;
  RequestExemplar e;
  e.arrival = 0;
  for (std::uint64_t i = 0; i < 10; ++i) {
    e.request_id = i;
    e.completion = 100 + (i * 37) % 50;  // latencies with ties
    insert_exemplar(top, 3, e);
  }
  ASSERT_EQ(top.size(), 3u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    const bool ordered =
        top[i - 1].latency() > top[i].latency() ||
        (top[i - 1].latency() == top[i].latency() &&
         top[i - 1].request_id < top[i].request_id);
    EXPECT_TRUE(ordered) << "top-K order violated at " << i;
  }
}

}  // namespace
}  // namespace hwgc
