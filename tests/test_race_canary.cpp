// Negative canary for the TSan CI job: a deliberately-racy "shard" that
// mutates shared state outside its own arena, gated behind HWGC_TEST_RACE
// so it never pollutes a normal test run. The tsan-torture CI job runs
// this binary with HWGC_TEST_RACE=1 under ThreadSanitizer and asserts
// that it FAILS (TSan's default exit code on a detected race is 66) —
// proving the race hunt would actually catch a shard that escaped its
// isolation, rather than silently passing an instrumentation-less build.
#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/shard_pool.hpp"

namespace hwgc {
namespace {

// Plain shared counter — the bug under test. Two pool lanes write it with
// no synchronization, which is exactly the cross-shard mutation the
// service architecture forbids.
std::uint64_t g_shared_counter = 0;  // NOLINT: intentional race target

TEST(RaceCanary, CrossShardMutationIsARace) {
  if (std::getenv("HWGC_TEST_RACE") == nullptr) {
    GTEST_SKIP() << "set HWGC_TEST_RACE=1 to run the deliberate race "
                    "(expected to FAIL under TSan)";
  }
  ShardPool pool(2, 2);
  ASSERT_TRUE(pool.parallel());
  for (int t = 0; t < 64; ++t) {
    for (std::size_t lane = 0; lane < 2; ++lane) {
      pool.submit(lane, [] {
        for (int i = 0; i < 4096; ++i) ++g_shared_counter;
      });
    }
  }
  pool.join_all();
  // No value assertion: the count is indeterminate by construction. The
  // failure signal is ThreadSanitizer's, not gtest's.
  SUCCEED() << "counter=" << g_shared_counter;
}

}  // namespace
}  // namespace hwgc
