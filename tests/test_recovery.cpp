// Abort-and-retry recovery: the escalation ladder (retry → core
// deconfiguration → sequential fallback), watchdog budget edge cases
// (budget exactly equal to the fault-free cycle count, zero-object
// collections, fail-stop inside the free critical section) and the
// Runtime-level Section V-E store-drain restart condition.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/coprocessor.hpp"
#include "fault/recovery.hpp"
#include "heap/verifier.hpp"
#include "runtime/runtime.hpp"
#include "workloads/benchmarks.hpp"

namespace hwgc {
namespace {

GraphPlan small_plan() { return make_benchmark_plan(BenchmarkId::kJlisp, 0.05); }

TEST(Recovery, FaultFreeRunMatchesBareCoprocessor) {
  const GraphPlan plan = small_plan();
  Workload a = materialize(plan);
  Workload b = materialize(plan);

  SimConfig cfg;
  cfg.coprocessor.num_cores = 4;
  Coprocessor coproc(cfg, *a.heap);
  const GcCycleStats bare = coproc.collect();

  cfg.recovery.enabled = true;
  RecoveringCollector rc(cfg, *b.heap);
  const RecoveryReport report = rc.collect();

  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.attempts.size(), 1u);
  EXPECT_FALSE(report.used_sequential_fallback);
  EXPECT_EQ(report.faults_injected, 0u);
  EXPECT_EQ(report.faults_fired, 0u);
  // The detection machinery (ECC shadow, watchdog budget, verifier) must
  // not perturb the simulated timing or the result.
  EXPECT_EQ(report.stats.total_cycles, bare.total_cycles);
  EXPECT_EQ(report.stats.objects_copied, bare.objects_copied);
  EXPECT_EQ(report.stats.words_copied, bare.words_copied);
  ASSERT_EQ(a.heap->alloc_ptr(), b.heap->alloc_ptr());
}

TEST(Recovery, WatchdogBudgetExactlyEqualToRuntimeSucceeds) {
  const GraphPlan plan = small_plan();
  Workload probe = materialize(plan);
  SimConfig cfg;
  cfg.coprocessor.num_cores = 4;
  Coprocessor coproc(cfg, *probe.heap);
  const Cycle actual = coproc.collect().total_cycles;

  // Budget == actual cycle count: the collection finishes on the last
  // allowed cycle — the break must win over the watchdog check.
  Workload w = materialize(plan);
  cfg.recovery.enabled = true;
  cfg.recovery.watchdog_base = actual;
  cfg.recovery.watchdog_per_live_word = 0;
  RecoveringCollector rc(cfg, *w.heap);
  const RecoveryReport report = rc.collect();
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.attempts.size(), 1u);
  EXPECT_EQ(report.stats.total_cycles, actual);
}

TEST(Recovery, WatchdogBudgetOneCycleShortEscalatesToFallback) {
  const GraphPlan plan = small_plan();
  Workload probe = materialize(plan);
  SimConfig cfg;
  cfg.coprocessor.num_cores = 4;
  Coprocessor coproc(cfg, *probe.heap);
  const Cycle actual = coproc.collect().total_cycles;

  // One cycle short: every coprocessor attempt deterministically hits the
  // watchdog (retries and reduced-core re-runs are no faster), so the
  // ladder must bottom out in the sequential software collector — and the
  // heap must still come out correct.
  Workload w = materialize(plan);
  const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);
  cfg.recovery.enabled = true;
  cfg.recovery.watchdog_base = actual - 1;
  cfg.recovery.watchdog_per_live_word = 0;
  RecoveringCollector rc(cfg, *w.heap);
  const RecoveryReport report = rc.collect();
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_TRUE(report.used_sequential_fallback);
  EXPECT_GE(report.aborts(AbortReason::kWatchdog), 1u);
  EXPECT_TRUE(verify_collection(pre, *w.heap).ok);
}

TEST(Recovery, ZeroObjectCollectionStaysUnderBaseBudget) {
  // Empty root set: live_words == 0, so the budget is the base alone —
  // the degenerate collection must fit and succeed on the first attempt.
  Heap heap(512);
  heap.allocate(2, 2);  // garbage only
  SimConfig cfg;
  cfg.coprocessor.num_cores = 8;
  cfg.recovery.enabled = true;
  cfg.recovery.watchdog_base = 1000;
  cfg.recovery.watchdog_per_live_word = 64;
  RecoveringCollector rc(cfg, heap);
  const RecoveryReport report = rc.collect();
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.attempts.size(), 1u);
  EXPECT_EQ(report.stats.objects_copied, 0u);
  EXPECT_LT(report.stats.total_cycles, 1000u);
}

TEST(Recovery, PersistentFailStopHoldingFreeLockDeconfiguresCore) {
  // The nastiest fail-stop: the core dies inside the free-lock critical
  // section, so every other core stalls on the free lock forever. A
  // persistent fault re-fires on every retry; recovery must localize the
  // dead core, deconfigure it and finish on the remaining cores.
  const GraphPlan plan = small_plan();
  Workload w = materialize(plan);
  const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);

  FaultPlan fplan;
  FaultEvent e;
  e.kind = FaultKind::kCoreFailStop;
  e.persistent = true;
  e.target_core = 1;
  e.when_holding_free = true;
  fplan.events.push_back(e);

  SimConfig cfg;
  cfg.coprocessor.num_cores = 2;
  cfg.recovery.enabled = true;
  RecoveringCollector rc(cfg, *w.heap, fplan);
  const RecoveryReport report = rc.collect();

  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_GE(report.aborts(AbortReason::kWatchdog), 1u);
  ASSERT_EQ(report.deconfigured.size(), 1u);
  EXPECT_EQ(report.deconfigured[0], 1u);
  EXPECT_FALSE(report.used_sequential_fallback)
      << "one healthy core remains; the coprocessor must finish the job";
  EXPECT_TRUE(verify_collection(pre, *w.heap).ok);
}

TEST(Recovery, HeaderCorruptionCaughtByChecksumThenRetried) {
  // A transient single-bit flip on the first consumed header: the core's
  // ECC check must abort the attempt, and the clean retry must succeed
  // without escalating further.
  const GraphPlan plan = small_plan();
  Workload w = materialize(plan);
  const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);

  FaultPlan fplan;
  FaultEvent e;
  e.kind = FaultKind::kMemCorrupt;
  e.target_core = 0;
  e.port = Port::kHeader;
  e.op = MemOp::kLoad;
  e.trigger = 0;
  e.bit = 5;
  fplan.events.push_back(e);

  SimConfig cfg;
  cfg.coprocessor.num_cores = 2;
  cfg.recovery.enabled = true;
  RecoveringCollector rc(cfg, *w.heap, fplan);
  const RecoveryReport report = rc.collect();

  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.aborts(AbortReason::kChecksum), 1u);
  EXPECT_EQ(report.attempts.size(), 2u);
  EXPECT_FALSE(report.used_sequential_fallback);
  EXPECT_EQ(report.faults_fired, 1u);
  EXPECT_TRUE(verify_collection(pre, *w.heap).ok);
}

TEST(Recovery, ReportAccountsForEveryInjectedEvent) {
  // Seeded end-to-end plan: whatever fires, the report's global counters
  // must agree with the per-attempt records and the fault log.
  const GraphPlan plan = small_plan();
  Workload w = materialize(plan);
  SimConfig cfg;
  cfg.coprocessor.num_cores = 4;
  cfg.fault.seed = 11;
  cfg.fault.events = 6;
  cfg.fault.trigger_scale = 48;
  cfg.recovery.enabled = true;
  RecoveringCollector rc(cfg, *w.heap);
  const RecoveryReport report = rc.collect();
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.faults_injected, 6u);
  std::uint64_t per_attempt = 0;
  for (const auto& a : report.attempts) per_attempt += a.faults_fired;
  EXPECT_EQ(per_attempt, report.faults_fired);
  EXPECT_EQ(report.fault_log.size(), report.faults_fired);
}

TEST(Runtime, RestartRequiresDrainedStoreBuffers) {
  // Section V-E: the main processor may only resume once every GC store
  // has committed. The skip_store_drain_for_test backdoor deliberately
  // violates the condition; without the Runtime-level enforcement this
  // test would pass the corrupted restart through silently.
  SimConfig cfg;
  cfg.coprocessor.num_cores = 4;
  cfg.coprocessor.skip_store_drain_for_test = true;
  Runtime rt(1 << 16, cfg);
  Runtime::Ref a = rt.alloc(1, 2);
  Runtime::Ref b = rt.alloc(0, 3);
  rt.set_ptr(a, 0, b);
  EXPECT_THROW(rt.collect(), std::logic_error);
  EXPECT_EQ(rt.drain_violations(), 1u);
  EXPECT_TRUE(rt.gc_history().empty())
      << "a refused restart must not be recorded as a completed cycle";
}

TEST(Runtime, NormalCollectionDrainsAndRestarts) {
  SimConfig cfg;
  cfg.coprocessor.num_cores = 4;
  Runtime rt(1 << 16, cfg);
  Runtime::Ref a = rt.alloc(1, 2);
  Runtime::Ref b = rt.alloc(0, 3);
  rt.set_ptr(a, 0, b);
  const GcCycleStats& s = rt.collect();
  EXPECT_TRUE(s.restart_stores_drained);
  EXPECT_EQ(rt.drain_violations(), 0u);
  EXPECT_EQ(s.objects_copied, 2u);
}

TEST(Recovery, LadderExhaustionFailsWithPerAttemptAccounting) {
  // Every rung disabled: a persistent fail-stop with deconfiguration AND
  // the sequential fallback forbidden must exhaust the retry budget and
  // report failure honestly — exactly 1 + max_retries attempts, every one
  // recorded as an abort, and no rung silently skipped.
  const GraphPlan plan = small_plan();
  Workload w = materialize(plan);

  FaultPlan fplan;
  FaultEvent e;
  e.kind = FaultKind::kCoreFailStop;
  e.persistent = true;
  e.target_core = 1;
  e.when_holding_free = true;
  fplan.events.push_back(e);

  SimConfig cfg;
  cfg.coprocessor.num_cores = 2;
  cfg.recovery.enabled = true;
  cfg.recovery.max_retries = 2;
  cfg.recovery.allow_deconfigure = false;
  cfg.recovery.allow_sequential_fallback = false;

  // Pre-image of the whole allocated prefix, word for word.
  const Addr base = w.heap->layout().current_base();
  const Addr alloc = w.heap->alloc_ptr();
  std::vector<Word> pre_words;
  for (Addr a = base; a < alloc; ++a) {
    pre_words.push_back(w.heap->memory().load(a));
  }
  const std::vector<Addr> pre_roots = w.heap->roots();

  RecoveringCollector rc(cfg, *w.heap, fplan);
  const RecoveryReport report = rc.collect();

  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.attempts.size(), 3u)
      << "1 + max_retries attempts before giving up";
  for (const auto& a : report.attempts) {
    EXPECT_FALSE(a.success);
    EXPECT_EQ(a.num_cores, 2u) << "deconfiguration forbidden";
    EXPECT_GT(a.cycles, 0u);
  }
  EXPECT_TRUE(report.deconfigured.empty());
  EXPECT_FALSE(report.used_sequential_fallback);
  EXPECT_GE(report.aborts(AbortReason::kWatchdog), 3u);

  // No silent corruption: the failed collection must leave the pre-cycle
  // image bit-exact — same space, same words, same roots, same alloc_ptr.
  ASSERT_EQ(w.heap->layout().current_base(), base);
  ASSERT_EQ(w.heap->alloc_ptr(), alloc);
  for (Addr a = base; a < alloc; ++a) {
    ASSERT_EQ(w.heap->memory().load(a),
              pre_words[static_cast<std::size_t>(a - base)])
        << "word at " << a << " diverged from the pre-cycle image";
  }
  EXPECT_EQ(w.heap->roots(), pre_roots);
}

TEST(Runtime, UnrecoverableCollectionThrowsWithMessage) {
  // Runtime-level surface of ladder exhaustion: collect() must throw (not
  // return garbage), the message must say so, the failed cycle must NOT
  // appear in gc_history, and the failing report must be preserved with
  // its per-attempt accounting.
  SimConfig cfg;
  cfg.coprocessor.num_cores = 2;
  cfg.fault.seed = 7;
  cfg.fault.events = 4;
  cfg.fault.persistent_fraction = 1.0;  // every event re-fires on retry
  cfg.fault.class_mask = 1u << static_cast<int>(FaultKind::kCoreFailStop);
  cfg.fault.trigger_scale = 48;
  cfg.recovery.enabled = true;
  cfg.recovery.max_retries = 1;
  cfg.recovery.allow_deconfigure = false;
  cfg.recovery.allow_sequential_fallback = false;

  Runtime rt(1 << 16, cfg);
  Runtime::Ref a = rt.alloc(2, 1);
  Runtime::Ref b = rt.alloc(0, 4);
  rt.set_ptr(a, 0, b);
  rt.set_ptr(a, 1, a);

  try {
    rt.collect();
    FAIL() << "ladder exhaustion must surface as an exception";
  } catch (const std::runtime_error& ex) {
    EXPECT_NE(std::string(ex.what()).find("unrecoverable"), std::string::npos)
        << "actual message: " << ex.what();
  }
  EXPECT_TRUE(rt.gc_history().empty())
      << "a failed collection must not be recorded as completed";
  ASSERT_EQ(rt.recovery_history().size(), 1u);
  const RecoveryReport& report = rt.recovery_history()[0];
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.attempts.size(), 2u);  // 1 + max_retries
  for (const auto& at : report.attempts) EXPECT_FALSE(at.success);
}

TEST(Runtime, FaultConfigRoutesCollectionThroughRecovery) {
  SimConfig cfg;
  cfg.coprocessor.num_cores = 4;
  cfg.fault.seed = 5;
  cfg.fault.events = 3;
  cfg.fault.trigger_scale = 48;
  Runtime rt(1 << 16, cfg);
  Runtime::Ref a = rt.alloc(2, 1);
  Runtime::Ref b = rt.alloc(0, 4);
  rt.set_ptr(a, 0, b);
  rt.set_ptr(a, 1, a);
  rt.collect();
  ASSERT_EQ(rt.recovery_history().size(), 1u);
  const RecoveryReport& report = rt.recovery_history()[0];
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.faults_injected, 3u);
}

}  // namespace
}  // namespace hwgc
