// Abort-and-retry recovery: the escalation ladder (retry → core
// deconfiguration → sequential fallback), watchdog budget edge cases
// (budget exactly equal to the fault-free cycle count, zero-object
// collections, fail-stop inside the free critical section) and the
// Runtime-level Section V-E store-drain restart condition.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/coprocessor.hpp"
#include "fault/recovery.hpp"
#include "heap/verifier.hpp"
#include "runtime/runtime.hpp"
#include "workloads/benchmarks.hpp"

namespace hwgc {
namespace {

GraphPlan small_plan() { return make_benchmark_plan(BenchmarkId::kJlisp, 0.05); }

TEST(Recovery, FaultFreeRunMatchesBareCoprocessor) {
  const GraphPlan plan = small_plan();
  Workload a = materialize(plan);
  Workload b = materialize(plan);

  SimConfig cfg;
  cfg.coprocessor.num_cores = 4;
  Coprocessor coproc(cfg, *a.heap);
  const GcCycleStats bare = coproc.collect();

  cfg.recovery.enabled = true;
  RecoveringCollector rc(cfg, *b.heap);
  const RecoveryReport report = rc.collect();

  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.attempts.size(), 1u);
  EXPECT_FALSE(report.used_sequential_fallback);
  EXPECT_EQ(report.faults_injected, 0u);
  EXPECT_EQ(report.faults_fired, 0u);
  // The detection machinery (ECC shadow, watchdog budget, verifier) must
  // not perturb the simulated timing or the result.
  EXPECT_EQ(report.stats.total_cycles, bare.total_cycles);
  EXPECT_EQ(report.stats.objects_copied, bare.objects_copied);
  EXPECT_EQ(report.stats.words_copied, bare.words_copied);
  ASSERT_EQ(a.heap->alloc_ptr(), b.heap->alloc_ptr());
}

TEST(Recovery, WatchdogBudgetExactlyEqualToRuntimeSucceeds) {
  const GraphPlan plan = small_plan();
  Workload probe = materialize(plan);
  SimConfig cfg;
  cfg.coprocessor.num_cores = 4;
  Coprocessor coproc(cfg, *probe.heap);
  const Cycle actual = coproc.collect().total_cycles;

  // Budget == actual cycle count: the collection finishes on the last
  // allowed cycle — the break must win over the watchdog check.
  Workload w = materialize(plan);
  cfg.recovery.enabled = true;
  cfg.recovery.watchdog_base = actual;
  cfg.recovery.watchdog_per_live_word = 0;
  RecoveringCollector rc(cfg, *w.heap);
  const RecoveryReport report = rc.collect();
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.attempts.size(), 1u);
  EXPECT_EQ(report.stats.total_cycles, actual);
}

TEST(Recovery, WatchdogBudgetOneCycleShortEscalatesToFallback) {
  const GraphPlan plan = small_plan();
  Workload probe = materialize(plan);
  SimConfig cfg;
  cfg.coprocessor.num_cores = 4;
  Coprocessor coproc(cfg, *probe.heap);
  const Cycle actual = coproc.collect().total_cycles;

  // One cycle short: every coprocessor attempt deterministically hits the
  // watchdog (retries and reduced-core re-runs are no faster), so the
  // ladder must bottom out in the sequential software collector — and the
  // heap must still come out correct.
  Workload w = materialize(plan);
  const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);
  cfg.recovery.enabled = true;
  cfg.recovery.watchdog_base = actual - 1;
  cfg.recovery.watchdog_per_live_word = 0;
  RecoveringCollector rc(cfg, *w.heap);
  const RecoveryReport report = rc.collect();
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_TRUE(report.used_sequential_fallback);
  EXPECT_GE(report.aborts(AbortReason::kWatchdog), 1u);
  EXPECT_TRUE(verify_collection(pre, *w.heap).ok);
}

TEST(Recovery, ZeroObjectCollectionStaysUnderBaseBudget) {
  // Empty root set: live_words == 0, so the budget is the base alone —
  // the degenerate collection must fit and succeed on the first attempt.
  Heap heap(512);
  heap.allocate(2, 2);  // garbage only
  SimConfig cfg;
  cfg.coprocessor.num_cores = 8;
  cfg.recovery.enabled = true;
  cfg.recovery.watchdog_base = 1000;
  cfg.recovery.watchdog_per_live_word = 64;
  RecoveringCollector rc(cfg, heap);
  const RecoveryReport report = rc.collect();
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.attempts.size(), 1u);
  EXPECT_EQ(report.stats.objects_copied, 0u);
  EXPECT_LT(report.stats.total_cycles, 1000u);
}

TEST(Recovery, PersistentFailStopHoldingFreeLockDeconfiguresCore) {
  // The nastiest fail-stop: the core dies inside the free-lock critical
  // section, so every other core stalls on the free lock forever. A
  // persistent fault re-fires on every retry; recovery must localize the
  // dead core, deconfigure it and finish on the remaining cores.
  const GraphPlan plan = small_plan();
  Workload w = materialize(plan);
  const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);

  FaultPlan fplan;
  FaultEvent e;
  e.kind = FaultKind::kCoreFailStop;
  e.persistent = true;
  e.target_core = 1;
  e.when_holding_free = true;
  fplan.events.push_back(e);

  SimConfig cfg;
  cfg.coprocessor.num_cores = 2;
  cfg.recovery.enabled = true;
  RecoveringCollector rc(cfg, *w.heap, fplan);
  const RecoveryReport report = rc.collect();

  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_GE(report.aborts(AbortReason::kWatchdog), 1u);
  ASSERT_EQ(report.deconfigured.size(), 1u);
  EXPECT_EQ(report.deconfigured[0], 1u);
  EXPECT_FALSE(report.used_sequential_fallback)
      << "one healthy core remains; the coprocessor must finish the job";
  EXPECT_TRUE(verify_collection(pre, *w.heap).ok);
}

TEST(Recovery, HeaderCorruptionCaughtByChecksumThenRetried) {
  // A transient single-bit flip on the first consumed header: the core's
  // ECC check must abort the attempt, and the clean retry must succeed
  // without escalating further.
  const GraphPlan plan = small_plan();
  Workload w = materialize(plan);
  const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);

  FaultPlan fplan;
  FaultEvent e;
  e.kind = FaultKind::kMemCorrupt;
  e.target_core = 0;
  e.port = Port::kHeader;
  e.op = MemOp::kLoad;
  e.trigger = 0;
  e.bit = 5;
  fplan.events.push_back(e);

  SimConfig cfg;
  cfg.coprocessor.num_cores = 2;
  cfg.recovery.enabled = true;
  RecoveringCollector rc(cfg, *w.heap, fplan);
  const RecoveryReport report = rc.collect();

  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.aborts(AbortReason::kChecksum), 1u);
  EXPECT_EQ(report.attempts.size(), 2u);
  EXPECT_FALSE(report.used_sequential_fallback);
  EXPECT_EQ(report.faults_fired, 1u);
  EXPECT_TRUE(verify_collection(pre, *w.heap).ok);
}

TEST(Recovery, ReportAccountsForEveryInjectedEvent) {
  // Seeded end-to-end plan: whatever fires, the report's global counters
  // must agree with the per-attempt records and the fault log.
  const GraphPlan plan = small_plan();
  Workload w = materialize(plan);
  SimConfig cfg;
  cfg.coprocessor.num_cores = 4;
  cfg.fault.seed = 11;
  cfg.fault.events = 6;
  cfg.fault.trigger_scale = 48;
  cfg.recovery.enabled = true;
  RecoveringCollector rc(cfg, *w.heap);
  const RecoveryReport report = rc.collect();
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.faults_injected, 6u);
  std::uint64_t per_attempt = 0;
  for (const auto& a : report.attempts) per_attempt += a.faults_fired;
  EXPECT_EQ(per_attempt, report.faults_fired);
  EXPECT_EQ(report.fault_log.size(), report.faults_fired);
}

TEST(Runtime, RestartRequiresDrainedStoreBuffers) {
  // Section V-E: the main processor may only resume once every GC store
  // has committed. The skip_store_drain_for_test backdoor deliberately
  // violates the condition; without the Runtime-level enforcement this
  // test would pass the corrupted restart through silently.
  SimConfig cfg;
  cfg.coprocessor.num_cores = 4;
  cfg.coprocessor.skip_store_drain_for_test = true;
  Runtime rt(1 << 16, cfg);
  Runtime::Ref a = rt.alloc(1, 2);
  Runtime::Ref b = rt.alloc(0, 3);
  rt.set_ptr(a, 0, b);
  EXPECT_THROW(rt.collect(), std::logic_error);
  EXPECT_EQ(rt.drain_violations(), 1u);
  EXPECT_TRUE(rt.gc_history().empty())
      << "a refused restart must not be recorded as a completed cycle";
}

TEST(Runtime, NormalCollectionDrainsAndRestarts) {
  SimConfig cfg;
  cfg.coprocessor.num_cores = 4;
  Runtime rt(1 << 16, cfg);
  Runtime::Ref a = rt.alloc(1, 2);
  Runtime::Ref b = rt.alloc(0, 3);
  rt.set_ptr(a, 0, b);
  const GcCycleStats& s = rt.collect();
  EXPECT_TRUE(s.restart_stores_drained);
  EXPECT_EQ(rt.drain_violations(), 0u);
  EXPECT_EQ(s.objects_copied, 2u);
}

TEST(Runtime, FaultConfigRoutesCollectionThroughRecovery) {
  SimConfig cfg;
  cfg.coprocessor.num_cores = 4;
  cfg.fault.seed = 5;
  cfg.fault.events = 3;
  cfg.fault.trigger_scale = 48;
  Runtime rt(1 << 16, cfg);
  Runtime::Ref a = rt.alloc(2, 1);
  Runtime::Ref b = rt.alloc(0, 4);
  rt.set_ptr(a, 0, b);
  rt.set_ptr(a, 1, a);
  rt.collect();
  ASSERT_EQ(rt.recovery_history().size(), 1u);
  const RecoveryReport& report = rt.recovery_history()[0];
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.faults_injected, 3u);
}

}  // namespace
}  // namespace hwgc
