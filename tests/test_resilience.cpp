// Fleet resilience under sustained fault storms (DESIGN.md §14).
//
// Three layers under test:
//   * ShardSupervisor unit contract — the health state machine's exact
//     transitions (escalations, unrecoverable failures, SLO burn, crash,
//     restore + probation) and the serving() routing predicate;
//   * FaultStorm unit contract — the seeded multi-shard storm plan is
//     deterministic and correlates neighbors;
//   * the chaos harness proof on HeapService — a quarter of the fleet
//     under a sustained storm with crashes: ZERO corrupted sessions (the
//     oracle, the read probes and the cross-shard walk all come back
//     clean), every admitted request accounted for exactly once
//     (completed + rejected + failed == offered, served + retried ==
//     completed, per shard AND fleet-wide), every degradation visible in
//     the health-event log and the hwgc-service-v1 records, and the whole
//     run bit-identical between the serial engine and the shard pool.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "fault/fault_storm.hpp"
#include "service/heap_service.hpp"
#include "service/service_metrics.hpp"
#include "service/supervisor.hpp"

namespace hwgc {
namespace {

// --- ShardSupervisor unit contract -----------------------------------------

ResilienceConfig unit_cfg() {
  ResilienceConfig rc;
  rc.supervise = true;
  rc.degrade_after = 2;
  rc.quarantine_after = 4;
  rc.slo_window = 4;
  rc.slo_burn = 0.5;
  rc.probation = 3;
  return rc;
}

TEST(ShardSupervisor, EscalationsDegradeThenQuarantine) {
  ShardSupervisor sup(1, unit_cfg());
  HealthSignals sig;
  EXPECT_EQ(sup.state(0), ShardHealth::kHealthy);

  sig.escalations = 1;
  auto v = sup.observe(0, 100, sig);
  EXPECT_FALSE(v.degraded);
  EXPECT_EQ(sup.state(0), ShardHealth::kHealthy);

  sig.escalations = 2;  // degrade_after reached
  v = sup.observe(0, 200, sig);
  EXPECT_TRUE(v.degraded);
  EXPECT_EQ(sup.state(0), ShardHealth::kDegraded);

  // The degrade reset the baseline: 2 further escalations are tolerated,
  // the 4th cumulative-since-transition quarantines.
  sig.escalations = 5;
  v = sup.observe(0, 300, sig);
  EXPECT_FALSE(v.quarantined);
  sig.escalations = 6;
  v = sup.observe(0, 400, sig);
  EXPECT_TRUE(v.quarantined);
  EXPECT_EQ(sup.state(0), ShardHealth::kQuarantined);
  EXPECT_FALSE(sup.serving(0, 99999));

  // Quarantined shards are parked until the restore, whatever the signals.
  v = sup.observe(0, 500, sig);
  EXPECT_FALSE(v.degraded || v.quarantined || v.recovered);
}

TEST(ShardSupervisor, UnrecoverableFailureQuarantinesImmediately) {
  ShardSupervisor sup(2, unit_cfg());
  HealthSignals sig;
  sig.failures = 1;
  const auto v = sup.observe(1, 50, sig);
  EXPECT_TRUE(v.quarantined);
  EXPECT_EQ(sup.state(1), ShardHealth::kQuarantined);
  EXPECT_EQ(sup.state(0), ShardHealth::kHealthy) << "per-shard isolation";
  ASSERT_EQ(sup.events().size(), 1u);
  EXPECT_EQ(sup.events()[0].reason, "unrecoverable");
}

TEST(ShardSupervisor, SloBurnDegradesThenQuarantines) {
  ShardSupervisor sup(1, unit_cfg());
  HealthSignals sig;
  sig.window_size = 4;
  sig.window_violations = 2;  // 50% >= slo_burn
  auto v = sup.observe(0, 10, sig);
  EXPECT_TRUE(v.degraded);
  EXPECT_TRUE(v.reset_window) << "a burn verdict consumes the window";
  EXPECT_EQ(sup.state(0), ShardHealth::kDegraded);

  // Burning again while degraded escalates to quarantine.
  v = sup.observe(0, 20, sig);
  EXPECT_TRUE(v.quarantined);
  EXPECT_EQ(sup.state(0), ShardHealth::kQuarantined);
}

TEST(ShardSupervisor, RestoreProbationThenHealthy) {
  ShardSupervisor sup(1, unit_cfg());
  HealthSignals sig;
  sig.failures = 1;
  ASSERT_TRUE(sup.observe(0, 100, sig).quarantined);

  sig.completions = 10;
  sup.restored(0, 600, sig);
  EXPECT_EQ(sup.state(0), ShardHealth::kRestoring);
  EXPECT_EQ(sup.restore_ready(0), 600u);
  EXPECT_FALSE(sup.serving(0, 599)) << "failover window while restoring";
  EXPECT_TRUE(sup.serving(0, 600)) << "probation traffic after the restore";

  // Probation: 3 clean completions after the restore re-earn healthy —
  // but not before the restore's virtual completion time.
  sig.completions = 13;
  auto v = sup.observe(0, 590, sig);
  EXPECT_FALSE(v.recovered);
  v = sup.observe(0, 700, sig);
  EXPECT_TRUE(v.recovered);
  EXPECT_EQ(sup.state(0), ShardHealth::kHealthy);

  // The failure that caused the quarantine was baselined by restored():
  // it must not re-quarantine the recovered shard.
  v = sup.observe(0, 800, sig);
  EXPECT_FALSE(v.quarantined);
}

TEST(ShardSupervisor, CrashQuarantinesFromAnyStateOnce) {
  ShardSupervisor sup(1, unit_cfg());
  EXPECT_TRUE(sup.crash(0, 40, "storm-crash"));
  EXPECT_EQ(sup.state(0), ShardHealth::kQuarantined);
  EXPECT_FALSE(sup.crash(0, 41, "storm-crash"))
      << "an already-quarantined shard needs no second restore";
  ASSERT_EQ(sup.events().size(), 1u);
  EXPECT_EQ(sup.events()[0].reason, "storm-crash");
  EXPECT_EQ(sup.events_total(), 1u);
}

// --- FaultStorm unit contract ----------------------------------------------

TEST(FaultStorm, SeededPlanIsDeterministic) {
  FaultStormConfig cfg;
  cfg.seed = 9;
  cfg.shard_fraction = 0.25;
  cfg.burst_requests = 8;
  cfg.calm_requests = 8;
  FaultStorm a(cfg, 8), b(cfg, 8);
  ASSERT_TRUE(a.enabled());
  EXPECT_EQ(a.stormed_count(), b.stormed_count());
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_EQ(a.stormed(s), b.stormed(s));
    if (!a.stormed(s)) continue;
    EXPECT_EQ(a.events(s), b.events(s));
    EXPECT_EQ(a.fault_seed(s), b.fault_seed(s));
    EXPECT_EQ(a.initially_active(s), b.initially_active(s));
    for (int i = 0; i < 40; ++i) {
      const StormTick ta = a.tick(s), tb = b.tick(s);
      EXPECT_EQ(ta.fault_active, tb.fault_active);
      EXPECT_EQ(ta.toggled, tb.toggled);
      EXPECT_EQ(ta.crash, tb.crash);
    }
  }
}

TEST(FaultStorm, QuarterFleetWithNeighborsAndDistinctSeeds) {
  FaultStormConfig cfg;
  cfg.seed = 3;
  cfg.shard_fraction = 0.25;
  cfg.correlate_neighbors = true;
  FaultStorm storm(cfg, 8);
  // ceil(0.25 * 8) = 2 primaries; correlated neighbors may add up to 2.
  EXPECT_GE(storm.stormed_count(), 2u);
  EXPECT_LE(storm.stormed_count(), 4u);
  std::uint64_t prev_seed = 0;
  for (std::size_t s = 0; s < 8; ++s) {
    if (!storm.stormed(s)) continue;
    EXPECT_GT(storm.events(s), 0u);
    EXPECT_NE(storm.fault_seed(s), prev_seed)
        << "per-shard fault streams must be independent";
    prev_seed = storm.fault_seed(s);
  }
}

TEST(FaultStorm, DisabledByDefault) {
  FaultStormConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  FaultStorm storm(cfg, 8);
  EXPECT_FALSE(storm.enabled());
  EXPECT_EQ(storm.stormed_count(), 0u);
}

// --- Chaos harness on HeapService ------------------------------------------

/// The chaos configuration: 25% of an 8-shard fleet under a sustained
/// storm (repeating collection faults in bursts, periodic crashes), with
/// supervision, checkpointing, failover routing and a deadline budget.
ServiceConfig chaos_config() {
  ServiceConfig cfg;
  cfg.shards = 8;
  cfg.semispace_words = 2048;  // small heap: collections actually happen
  cfg.sim.coprocessor.num_cores = 2;
  cfg.storm.seed = 5;
  cfg.storm.shard_fraction = 0.25;
  cfg.storm.events_per_collection = 2;
  cfg.storm.burst_requests = 64;
  cfg.storm.calm_requests = 32;
  cfg.storm.crash_period = 250;
  cfg.resilience.supervise = true;
  cfg.resilience.checkpoint_interval = 2;
  cfg.resilience.restore_cost = 20'000;
  cfg.resilience.deadline_cycles = 1u << 16;
  cfg.resilience.max_retries = 2;
  cfg.resilience.retry_backoff = 200;
  return cfg;
}

void expect_partition(const SloStats& s, const std::string& who) {
  EXPECT_EQ(s.completed + s.rejected + s.failed, s.offered)
      << who << ": every admitted request must end in exactly one bucket";
  EXPECT_EQ(s.served() + s.retried, s.completed)
      << who << ": completions split into home-served and failed-over";
  EXPECT_LE(s.crashes, s.failed) << who;
  EXPECT_LE(s.restores, s.quarantines) << who;
  EXPECT_EQ(s.checkpoint_digest_failures, 0u) << who;
}

TEST(ChaosHarness, StormedQuarterFleetZeroCorruption) {
  HeapService service(chaos_config());
  ASSERT_TRUE(service.resilient());
  ASSERT_GE(service.storm().stormed_count(), 2u);
  service.serve(6000);

  const SloStats fleet = service.fleet_stats();

  // The storm actually happened: crashes fired, shards were quarantined
  // and restored from checkpoints, traffic failed over.
  EXPECT_GT(fleet.crashes, 0u);
  EXPECT_GT(fleet.quarantines, 0u);
  EXPECT_GT(fleet.restores, 0u);
  EXPECT_GT(fleet.retried, 0u) << "failover routing must have engaged";
  EXPECT_GT(fleet.checkpoints, 0u);

  // ZERO corrupted sessions: every verification layer clean.
  EXPECT_EQ(fleet.oracle_failures, 0u);
  EXPECT_EQ(fleet.read_mismatches, 0u);
  EXPECT_EQ(service.validate_all_shards(), 0u)
      << "a stormed shard leaked corruption into the fleet";

  // Exact accounting, shard by shard and in aggregate.
  for (std::size_t i = 0; i < service.shard_count(); ++i) {
    expect_partition(service.shard_stats(i), "shard " + std::to_string(i));
  }
  expect_partition(fleet, "fleet");

  // Every degradation visible: the event log's quarantine transitions
  // match the counters the JSONL exposes.
  std::uint64_t quarantine_events = 0, restore_events = 0;
  for (const HealthEvent& e : service.health_events()) {
    if (e.to == ShardHealth::kQuarantined) ++quarantine_events;
    if (e.to == ShardHealth::kRestoring) ++restore_events;
  }
  EXPECT_EQ(quarantine_events, fleet.quarantines);
  EXPECT_EQ(restore_events, fleet.restores);

  // And the hwgc-service-v1 records validate — the schema's identities
  // are enforced on exactly this output in CI.
  const std::string jsonl = service_report_jsonl(service, "chaos");
  std::size_t pos = 0, lines = 0;
  while (pos < jsonl.size()) {
    std::size_t eol = jsonl.find('\n', pos);
    if (eol == std::string::npos) eol = jsonl.size();
    const std::string line = jsonl.substr(pos, eol - pos);
    if (!line.empty()) {
      ++lines;
      std::string err;
      EXPECT_TRUE(validate_service_jsonl_line(line, &err)) << err;
    }
    pos = eol + 1;
  }
  EXPECT_EQ(lines, service.shard_count() + 1);
}

TEST(ChaosHarness, SerialAndShardPoolBitIdenticalUnderStorm) {
  ServiceConfig cfg = chaos_config();
  cfg.host_threads = 1;
  HeapService serial(cfg);
  serial.serve(4000);
  const std::string reference = service_report_jsonl(serial, "chaos");

  for (std::size_t threads : {2u, 4u, 8u}) {
    ServiceConfig pc = chaos_config();
    pc.host_threads = threads;
    HeapService pooled(pc);
    pooled.serve(4000);
    EXPECT_EQ(service_report_jsonl(pooled, "chaos"), reference)
        << "host_threads=" << threads
        << " diverged from the serial engine under the storm";
  }
}

TEST(ChaosHarness, DeadlineBudgetShedsInsteadOfQueueingUnbounded) {
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.semispace_words = 2048;
  cfg.sim.coprocessor.num_cores = 2;
  cfg.traffic.load = 4.0;  // far past saturation
  cfg.resilience.deadline_cycles = 512;
  cfg.resilience.max_retries = 1;
  HeapService service(cfg);
  ASSERT_TRUE(service.resilient()) << "a deadline budget enables resilience";
  service.serve(4000);
  const SloStats fleet = service.fleet_stats();
  EXPECT_GT(fleet.rejected, 0u)
      << "an overloaded fleet with a deadline budget must shed";
  EXPECT_GT(fleet.completed, 0u);
  expect_partition(fleet, "fleet");
  EXPECT_EQ(service.validate_all_shards(), 0u);
}

TEST(ChaosHarness, ResilienceOffIsInertAndHealthy) {
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.semispace_words = 2048;
  HeapService service(cfg);
  EXPECT_FALSE(service.resilient());
  service.serve(1500);
  EXPECT_EQ(service.fleet_health(), ShardHealth::kHealthy);
  EXPECT_EQ(service.shard_health(0), ShardHealth::kHealthy);
  EXPECT_TRUE(service.health_events().empty());
  const SloStats fleet = service.fleet_stats();
  EXPECT_EQ(fleet.failed, 0u);
  EXPECT_EQ(fleet.retried, 0u);
  EXPECT_EQ(fleet.checkpoints, 0u);
  EXPECT_EQ(fleet.restores, 0u);
  EXPECT_EQ(fleet.quarantines, 0u);
  expect_partition(fleet, "fleet");
}

TEST(ChaosHarness, CrashPeriodWithoutSupervisionIsRejected) {
  ServiceConfig cfg;
  cfg.shards = 4;
  cfg.storm.shard_fraction = 0.5;
  cfg.storm.crash_period = 100;
  cfg.resilience.supervise = false;
  EXPECT_THROW(HeapService{cfg}, std::invalid_argument)
      << "a crash schedule without a supervisor would wedge shards forever";
}

TEST(ChaosHarness, RollbackNeverExceedsCompletions) {
  ServiceConfig cfg = chaos_config();
  cfg.resilience.checkpoint_interval = 1;
  HeapService service(cfg);
  service.serve(5000);
  const SloStats fleet = service.fleet_stats();
  EXPECT_LE(fleet.rolled_back, fleet.completed)
      << "a restore can only roll back requests that completed";
  EXPECT_EQ(service.validate_all_shards(), 0u);
}

}  // namespace
}  // namespace hwgc
