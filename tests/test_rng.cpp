// Deterministic RNG used by every workload generator.
#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace hwgc {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  bool diverged = false;
  for (int i = 0; i < 1000; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    if (va != c()) diverged = true;
  }
  EXPECT_TRUE(diverged) << "different seeds must give different streams";
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BetweenIsInclusive) {
  Rng rng(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.between(3, 6);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 6u);
    hit_lo |= v == 3;
    hit_hi |= v == 6;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, SplitMixExpandsSeeds) {
  std::uint64_t s1 = 1, s2 = 2;
  const auto a = splitmix64(s1);
  const auto b = splitmix64(s2);
  EXPECT_NE(a, b);
  EXPECT_NE(s1, 1u) << "state must advance";
}

}  // namespace
}  // namespace hwgc
