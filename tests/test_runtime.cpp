// Runtime facade + multi-cycle integration: the shadow mutator churns the
// heap through many coprocessor collection cycles and the heap must agree
// with the shadow graph afterwards — the strongest end-to-end property in
// the suite (object identity, shape, data and links across moves).
#include <gtest/gtest.h>

#include "runtime/runtime.hpp"
#include "workloads/mutator.hpp"

namespace hwgc {
namespace {

TEST(Runtime, AllocateAndAccess) {
  Runtime rt(1 << 16);
  auto a = rt.alloc(2, 3);
  auto b = rt.alloc(0, 1);
  rt.set_ptr(a, 0, b);
  rt.set_data(a, 2, 0xdeadbeef);
  rt.set_data(b, 0, 42);
  EXPECT_EQ(rt.pi(a), 2u);
  EXPECT_EQ(rt.delta(a), 3u);
  EXPECT_EQ(rt.get_data(a, 2), 0xdeadbeefu);
  auto b2 = rt.load_ptr(a, 0);
  EXPECT_EQ(rt.get_data(b2, 0), 42u);
  auto nul = rt.load_ptr(a, 1);
  EXPECT_TRUE(nul.is_null());
}

TEST(Runtime, SurvivesExplicitCollection) {
  Runtime rt(1 << 14);
  auto a = rt.alloc(1, 2);
  auto b = rt.alloc(0, 2);
  rt.set_ptr(a, 0, b);
  rt.set_data(b, 0, 7);
  rt.set_data(b, 1, 9);
  const Addr before = rt.address_of(a);
  rt.collect();
  EXPECT_NE(rt.address_of(a), before) << "copying GC must move the object";
  auto b2 = rt.load_ptr(a, 0);
  EXPECT_EQ(rt.get_data(b2, 0), 7u);
  EXPECT_EQ(rt.get_data(b2, 1), 9u);
  EXPECT_EQ(rt.gc_history().size(), 1u);
}

TEST(Runtime, CollectsAutomaticallyOnExhaustion) {
  Runtime rt(2048);
  // Allocate and drop garbage until well past several semispaces' worth.
  std::uint64_t allocated_words = 0;
  for (int i = 0; i < 600; ++i) {
    auto r = rt.alloc(0, 8);
    allocated_words += 10;
    rt.release(r);
  }
  EXPECT_GE(rt.gc_history().size(), 2u)
      << "dropping garbage must have triggered collections";
}

TEST(Runtime, ThrowsWhenLiveSetExceedsHeap) {
  Runtime rt(256);
  std::vector<Runtime::Ref> pins;
  EXPECT_THROW(
      {
        for (int i = 0; i < 100; ++i) pins.push_back(rt.alloc(0, 16));
      },
      std::runtime_error);
}

// Root-table hygiene: a released Ref's slot must be handed to a later
// alloc instead of growing the table — a service holding shards for
// millions of requests would otherwise leak root slots without bound.
TEST(Runtime, ReleasedRootSlotsAreReused) {
  Runtime rt(1 << 14);
  constexpr std::size_t kBatch = 32;
  std::vector<Runtime::Ref> refs;
  for (std::size_t i = 0; i < kBatch; ++i) refs.push_back(rt.alloc(0, 1));
  EXPECT_EQ(rt.live_roots(), kBatch);
  EXPECT_EQ(rt.root_count(), kBatch);
  EXPECT_EQ(rt.root_high_water(), kBatch);

  for (auto& r : refs) rt.release(r);
  refs.clear();
  EXPECT_EQ(rt.live_roots(), 0u);
  EXPECT_EQ(rt.root_count(), kBatch) << "slots stay in the table, freelisted";
  EXPECT_EQ(rt.root_high_water(), kBatch) << "high water never shrinks";

  // Churn several batches through: the table must never grow past the
  // first batch's high-water mark.
  for (int round = 0; round < 8; ++round) {
    for (std::size_t i = 0; i < kBatch; ++i) refs.push_back(rt.alloc(0, 1));
    EXPECT_EQ(rt.live_roots(), kBatch);
    EXPECT_EQ(rt.root_count(), kBatch)
        << "round " << round << ": released slots were not reused";
    EXPECT_EQ(rt.root_high_water(), kBatch);
    for (auto& r : refs) rt.release(r);
    refs.clear();
  }
}

TEST(Runtime, RootHighWaterTracksPeakNotCurrent) {
  Runtime rt(1 << 14);
  auto a = rt.alloc(0, 1);
  auto b = rt.alloc(0, 1);
  auto c = rt.alloc(0, 1);
  EXPECT_EQ(rt.root_high_water(), 3u);
  rt.release(b);
  rt.release(c);
  EXPECT_EQ(rt.live_roots(), 1u);
  EXPECT_EQ(rt.root_high_water(), 3u);
  auto d = rt.alloc(0, 1);  // reuses a freed slot
  EXPECT_EQ(rt.live_roots(), 2u);
  EXPECT_EQ(rt.root_count(), 3u);
  EXPECT_EQ(rt.root_high_water(), 3u);
  rt.release(a);
  rt.release(d);
}

// The CollectionObserver seam (what the heap service hangs its per-cycle
// oracle on): both explicit collect() calls and exhaustion-triggered
// cycles inside alloc() must invoke before/after in matched pairs.
struct CountingObserver final : CollectionObserver {
  int before = 0;
  int after = 0;
  Cycle last_cycles = 0;
  void before_collection(Runtime&) override { ++before; }
  void after_collection(Runtime&, const GcCycleStats& s) override {
    ++after;
    last_cycles = s.total_cycles;
  }
};

TEST(Runtime, ObserverSeesExplicitAndExhaustionCycles) {
  Runtime rt(2048);
  CountingObserver obs;
  rt.set_collection_observer(&obs);
  EXPECT_EQ(rt.collection_observer(), &obs);

  rt.collect();
  EXPECT_EQ(obs.before, 1);
  EXPECT_EQ(obs.after, 1);

  // Churn garbage until allocation itself triggers collections.
  for (int i = 0; i < 600; ++i) {
    auto r = rt.alloc(0, 8);
    rt.release(r);
  }
  EXPECT_GE(rt.gc_history().size(), 2u);
  EXPECT_EQ(obs.after, static_cast<int>(rt.gc_history().size()))
      << "every completed cycle must reach the observer";
  EXPECT_EQ(obs.before, obs.after);
  EXPECT_GT(obs.last_cycles, 0u);

  rt.set_collection_observer(nullptr);
  rt.collect();
  EXPECT_EQ(obs.after, static_cast<int>(rt.gc_history().size()) - 1)
      << "detached observer must not be called";
}

struct MutatorCase {
  std::uint32_t cores;
  std::uint64_t seed;
  std::size_t steps;
};

class ShadowMutatorChurn : public ::testing::TestWithParam<MutatorCase> {};

TEST_P(ShadowMutatorChurn, HeapMatchesShadowAfterManyCycles) {
  const MutatorCase param = GetParam();
  SimConfig cfg;
  cfg.coprocessor.num_cores = param.cores;
  Runtime rt(2200, cfg);  // small semispace: forces frequent collections
  ShadowMutator mut({.seed = param.seed, .target_live = 48});
  mut.run(rt, param.steps);
  EXPECT_GE(rt.gc_history().size(), 3u)
      << "test must actually exercise several collection cycles";
  EXPECT_EQ(mut.validate(rt), 0u);
  // And survive one more forced collection right after validation.
  rt.collect();
  EXPECT_EQ(mut.validate(rt), 0u);
  for (const auto& cycle : rt.gc_history()) {
    EXPECT_TRUE(cycle.lock_order_violations.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Churn, ShadowMutatorChurn,
    ::testing::Values(MutatorCase{1, 7, 8000}, MutatorCase{2, 11, 8000},
                      MutatorCase{4, 13, 10000}, MutatorCase{8, 17, 10000},
                      MutatorCase{16, 23, 12000}),
    [](const auto& param_info) {
      return "cores" + std::to_string(param_info.param.cores) + "_seed" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace hwgc
