// Safe-point RAII edge cases (src/concurrent_mutator/safe_point.hpp): the
// rendezvous protocol between real mutator threads and the pauseless
// collector must survive the awkward orders — opting out while a cycle
// start is pending, nested handles, a thread that opts in but never
// reaches a safe point (the cycle start must stall, nothing may corrupt),
// and scope teardown racing a pending pause.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "concurrent_mutator/safe_point.hpp"

namespace hwgc {
namespace {

using namespace std::chrono_literals;

TEST(SafePoint, PauseWithNoOptedInThreadsIsTrivial) {
  SafePointRegistry reg;
  EXPECT_EQ(reg.opted_in(), 0u);
  reg.request_stop();
  EXPECT_TRUE(reg.await_parked_for(0ms));
  reg.resume(MutatorPhase::kSnapshot);
  EXPECT_EQ(reg.phase(), MutatorPhase::kSnapshot);
  EXPECT_EQ(reg.safe_point_waits(), 0u);
}

TEST(SafePoint, PollParksAcrossBothPausesAndObservesPhases) {
  SafePointRegistry reg;
  std::atomic<int> idle_seen{0}, snapshot_seen{0};
  std::thread mut([&] {
    SafePointRegistry::Scope scope(reg);
    for (;;) {
      const MutatorPhase ph = reg.poll();
      if (ph == MutatorPhase::kFinished) break;
      if (ph == MutatorPhase::kIdle) idle_seen.store(1);
      if (ph == MutatorPhase::kSnapshot) snapshot_seen.store(1);
    }
  });
  // A stop requested before the thread opts in would be a trivially
  // established (empty) pause; wait until it is both registered and has
  // observed the idle phase at least once.
  while (reg.opted_in() == 0 || idle_seen.load() == 0) {
    std::this_thread::yield();
  }
  reg.request_stop();
  reg.await_parked();
  EXPECT_EQ(reg.parked(), 1u);
  reg.resume(MutatorPhase::kSnapshot);
  // Wait for the thread to actually leave the park: a stop requested while
  // it is still parked would be served by the same park (legal, but this
  // test wants to see both phases observed).
  while (reg.parked() != 0) std::this_thread::yield();
  while (snapshot_seen.load() == 0) std::this_thread::yield();
  reg.request_stop();
  reg.await_parked();
  reg.resume(MutatorPhase::kFinished);
  mut.join();
  EXPECT_EQ(idle_seen.load(), 1);
  EXPECT_EQ(snapshot_seen.load(), 1);
  EXPECT_GE(reg.safe_point_waits(), 2u);
  EXPECT_EQ(reg.opted_in(), 0u);
}

TEST(SafePoint, NestedScopesRegisterOnce) {
  SafePointRegistry reg;
  SafePointRegistry::Scope outer(reg);
  EXPECT_EQ(reg.opted_in(), 1u);
  {
    SafePointRegistry::Scope inner(reg);
    EXPECT_EQ(reg.opted_in(), 1u);
    {
      SafePointRegistry::Scope innermost(reg);
      EXPECT_EQ(reg.opted_in(), 1u);
      EXPECT_EQ(reg.poll(), MutatorPhase::kIdle);
    }
    EXPECT_EQ(reg.opted_in(), 1u);
  }
  // Still opted in: only the outermost scope unregisters.
  EXPECT_EQ(reg.opted_in(), 1u);
}

TEST(SafePoint, OptOutWhileStopPendingUnblocksThePause) {
  SafePointRegistry reg;
  std::atomic<bool> entered{false}, release{false};
  std::thread mut([&] {
    SafePointRegistry::Scope scope(reg);
    entered.store(true);
    // Never polls: just leaves when told. Scope destruction must count as
    // reaching the safe point.
    while (!release.load()) std::this_thread::yield();
  });
  while (!entered.load()) std::this_thread::yield();
  reg.request_stop();
  EXPECT_FALSE(reg.await_parked_for(50ms));  // thread neither polls nor exits
  release.store(true);
  EXPECT_TRUE(reg.await_parked_for(10s));  // opt-out completed the pause
  EXPECT_EQ(reg.opted_in(), 0u);
  reg.resume(MutatorPhase::kIdle);
  mut.join();
}

TEST(SafePoint, ThreadThatNeverReachesASafePointStallsTheCycleStart) {
  SafePointRegistry reg;
  std::atomic<bool> entered{false}, start_polling{false};
  std::thread mut([&] {
    SafePointRegistry::Scope scope(reg);
    entered.store(true);
    while (!start_polling.load()) std::this_thread::yield();  // no safe point
    while (reg.poll() != MutatorPhase::kFinished) std::this_thread::yield();
  });
  while (!entered.load()) std::this_thread::yield();
  reg.request_stop();
  // The cycle start stalls — repeatedly — but nothing corrupts: the
  // registry still reports the thread opted in and unparked.
  EXPECT_FALSE(reg.await_parked_for(20ms));
  EXPECT_FALSE(reg.await_parked_for(20ms));
  EXPECT_EQ(reg.opted_in(), 1u);
  EXPECT_EQ(reg.parked(), 0u);
  start_polling.store(true);
  reg.await_parked();
  EXPECT_EQ(reg.parked(), 1u);
  reg.resume(MutatorPhase::kFinished);
  mut.join();
  EXPECT_EQ(reg.opted_in(), 0u);
}

TEST(SafePoint, TeardownOrderWithCyclePendingIsClean) {
  SafePointRegistry reg;
  std::atomic<bool> a_in{false}, b_in{false}, b_exit{false};
  // A parks cooperatively; B tears its scope down while the pause is
  // pending. Both orders of "reaching the safe point" must compose.
  std::thread a([&] {
    SafePointRegistry::Scope scope(reg);
    a_in.store(true);
    while (reg.poll() != MutatorPhase::kFinished) std::this_thread::yield();
  });
  std::thread b([&] {
    SafePointRegistry::Scope scope(reg);
    b_in.store(true);
    while (!b_exit.load()) std::this_thread::yield();
  });
  while (!a_in.load() || !b_in.load()) std::this_thread::yield();
  reg.request_stop();
  b_exit.store(true);  // B opts out mid-rendezvous
  reg.await_parked();  // completes with A parked and B gone
  EXPECT_EQ(reg.opted_in(), 1u);
  reg.resume(MutatorPhase::kFinished);
  a.join();
  b.join();
  EXPECT_EQ(reg.opted_in(), 0u);
  EXPECT_EQ(reg.parked(), 0u);
}

}  // namespace
}  // namespace hwgc
