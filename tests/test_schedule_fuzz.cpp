// Schedule-exploration fuzzing: tier-1 bounded matrix + policy units.
//
// The parameterized suite runs a fixed (graph × schedule × core-count)
// matrix — 13 graph seeds × 4 schedule policies × 4 core counts = 208
// configurations, each through the full differential oracle of
// src/fuzz/oracle.hpp (coprocessor vs sequential Cheney, snapshot
// verifier, forwarding-map bijectivity, tospace image cross-compare,
// lock-order audit, single-evacuation counters). FIFO capacity, latency
// jitter and the optional collector features vary with the graph seed so
// the matrix also exercises backpressure and sub-object copying.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/coprocessor.hpp"
#include "core/schedule_policy.hpp"
#include "core/sync_block.hpp"
#include "fuzz/fuzz_graph.hpp"
#include "fuzz/oracle.hpp"
#include "sim/config.hpp"
#include "workloads/benchmarks.hpp"

namespace hwgc {
namespace {

// ---------------------------------------------------------------------------
// Policy unit tests.
// ---------------------------------------------------------------------------

bool is_permutation_of_cores(const std::vector<CoreId>& order,
                             std::uint32_t n) {
  if (order.size() != n) return false;
  std::set<CoreId> seen(order.begin(), order.end());
  if (seen.size() != n) return false;
  return *seen.begin() == 0 && *seen.rbegin() == n - 1;
}

TEST(SchedulePolicy, EveryPolicyEmitsAPermutationEveryCycle) {
  for (const SchedulePolicyKind kind :
       {SchedulePolicyKind::kFixedPriority, SchedulePolicyKind::kRotating,
        SchedulePolicyKind::kRandom, SchedulePolicyKind::kAdversarial}) {
    for (const std::uint32_t n : {1u, 2u, 5u, 16u}) {
      SyncBlock sb(n);
      const auto policy = make_schedule_policy(kind, /*seed=*/7);
      std::vector<CoreId> order;
      for (Cycle now = 0; now < 50; ++now) {
        policy->order(now, sb, order);
        EXPECT_TRUE(is_permutation_of_cores(order, n))
            << to_string(kind) << " n=" << n << " cycle=" << now;
      }
    }
  }
}

TEST(SchedulePolicy, FixedPriorityIsIdentity) {
  SyncBlock sb(4);
  const auto policy =
      make_schedule_policy(SchedulePolicyKind::kFixedPriority, 0);
  std::vector<CoreId> order;
  policy->order(123, sb, order);
  EXPECT_EQ(order, (std::vector<CoreId>{0, 1, 2, 3}));
}

TEST(SchedulePolicy, RotatingShiftsWithTheClock) {
  SyncBlock sb(4);
  const auto policy = make_schedule_policy(SchedulePolicyKind::kRotating, 0);
  std::vector<CoreId> order;
  policy->order(0, sb, order);
  EXPECT_EQ(order, (std::vector<CoreId>{0, 1, 2, 3}));
  policy->order(1, sb, order);
  EXPECT_EQ(order, (std::vector<CoreId>{1, 2, 3, 0}));
  policy->order(6, sb, order);
  EXPECT_EQ(order, (std::vector<CoreId>{2, 3, 0, 1}));
}

TEST(SchedulePolicy, RandomIsSeedDeterministicAndSeedSensitive) {
  SyncBlock sb(8);
  std::vector<CoreId> a, b;
  {
    const auto p1 = make_schedule_policy(SchedulePolicyKind::kRandom, 42);
    const auto p2 = make_schedule_policy(SchedulePolicyKind::kRandom, 42);
    for (Cycle now = 0; now < 100; ++now) {
      p1->order(now, sb, a);
      p2->order(now, sb, b);
      ASSERT_EQ(a, b) << "same seed must replay the same permutations";
    }
  }
  // Different seeds diverge somewhere in the first 100 cycles.
  const auto p1 = make_schedule_policy(SchedulePolicyKind::kRandom, 42);
  const auto p2 = make_schedule_policy(SchedulePolicyKind::kRandom, 43);
  bool diverged = false;
  for (Cycle now = 0; now < 100 && !diverged; ++now) {
    p1->order(now, sb, a);
    p2->order(now, sb, b);
    diverged = a != b;
  }
  EXPECT_TRUE(diverged);
}

TEST(SchedulePolicy, AdversarialStepsLockHoldersLast) {
  SyncBlock sb(4);
  sb.begin_cycle();
  ASSERT_TRUE(sb.try_lock_scan(2));
  ASSERT_TRUE(sb.try_lock_free(0));
  const auto policy =
      make_schedule_policy(SchedulePolicyKind::kAdversarial, 0);
  std::vector<CoreId> order;
  policy->order(5, sb, order);
  // Non-holders (1, 3) first in index order, then holders (0, 2).
  EXPECT_EQ(order, (std::vector<CoreId>{1, 3, 0, 2}));
}

TEST(SchedulePolicy, ParseRoundTripsAllNames) {
  for (const SchedulePolicyKind kind :
       {SchedulePolicyKind::kFixedPriority, SchedulePolicyKind::kRotating,
        SchedulePolicyKind::kRandom, SchedulePolicyKind::kAdversarial}) {
    SchedulePolicyKind parsed{};
    ASSERT_TRUE(parse_schedule_policy(to_string(kind), parsed));
    EXPECT_EQ(parsed, kind);
  }
  SchedulePolicyKind parsed{};
  EXPECT_FALSE(parse_schedule_policy("bogus", parsed));
}

TEST(ScheduleTrace, RingKeepsOnlyTheTail) {
  ScheduleTrace trace(2);
  trace.record(10, {0, 1});
  trace.record(11, {1, 0});
  trace.record(12, {0, 1});
  EXPECT_EQ(trace.cycles_recorded(), 3u);
  ASSERT_EQ(trace.orders().size(), 2u);
  EXPECT_EQ(trace.orders().front().first, 11u);
  EXPECT_NE(trace.dump().find("elided"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fuzz-case plumbing.
// ---------------------------------------------------------------------------

TEST(FuzzCase, OracleRunIsDeterministic) {
  FuzzCase fc = case_from_seed(17);
  fc.schedule = SchedulePolicyKind::kRandom;
  const FuzzVerdict a = run_fuzz_case(fc);
  const FuzzVerdict b = run_fuzz_case(fc);
  ASSERT_TRUE(a.ok) << a.summary();
  EXPECT_EQ(a.coproc.total_cycles, b.coproc.total_cycles);
  EXPECT_EQ(a.coproc.words_copied, b.coproc.words_copied);
  EXPECT_EQ(a.coproc.mem_requests, b.coproc.mem_requests);
  EXPECT_EQ(a.live_objects, b.live_objects);
}

TEST(FuzzCase, SeedDerivationCoversAllPolicies) {
  std::set<SchedulePolicyKind> seen;
  for (std::uint64_t s = 1; s <= 64; ++s) seen.insert(case_from_seed(s).schedule);
  EXPECT_EQ(seen.size(), 4u);
}

TEST(FuzzCase, JitteredScheduleTraceIsSeedDeterministic) {
  // Seeded latency jitter must be part of the deterministic replay: the
  // same seed and config on two fresh simulator instances (and thus two
  // fresh MemorySystem jitter streams) must produce the identical
  // cycle-by-cycle step order, not just the same end result.
  const GraphPlan plan = make_benchmark_plan(BenchmarkId::kJlisp, 0.05);
  SimConfig cfg;
  cfg.coprocessor.num_cores = 4;
  cfg.coprocessor.schedule = SchedulePolicyKind::kRandom;
  cfg.coprocessor.schedule_seed = 21;
  cfg.memory.latency_jitter = 5;
  cfg.memory.jitter_seed = 9;

  Workload w1 = materialize(plan);
  Workload w2 = materialize(plan);
  ScheduleTrace t1(1 << 20), t2(1 << 20);
  Coprocessor c1(cfg, *w1.heap);
  Coprocessor c2(cfg, *w2.heap);
  const GcCycleStats s1 = c1.collect(nullptr, &t1);
  const GcCycleStats s2 = c2.collect(nullptr, &t2);

  EXPECT_EQ(s1.total_cycles, s2.total_cycles);
  EXPECT_EQ(s1.mem_requests, s2.mem_requests);
  EXPECT_EQ(t1.cycles_recorded(), t2.cycles_recorded());
  ASSERT_EQ(t1.orders(), t2.orders());
  EXPECT_EQ(t1.dump(), t2.dump());

  // And a different jitter seed must actually change the execution
  // somewhere — otherwise the jitter knob is dead.
  SimConfig other = cfg;
  other.memory.jitter_seed = 10;
  Workload w3 = materialize(plan);
  Coprocessor c3(other, *w3.heap);
  const GcCycleStats s3 = c3.collect();
  EXPECT_NE(s1.total_cycles, s3.total_cycles);
}

TEST(FuzzGraph, EmptyRootSetIsReachable) {
  FuzzGraphConfig cfg;
  cfg.empty_root_probability = 1.0;
  const GraphPlan plan = make_fuzz_plan(3, cfg);
  EXPECT_TRUE(plan.roots.empty());
}

// ---------------------------------------------------------------------------
// The bounded matrix: 13 seeds × 4 policies × 4 core counts = 208 configs.
// ---------------------------------------------------------------------------

using MatrixParam = std::tuple<std::uint64_t, SchedulePolicyKind,
                               std::uint32_t>;

class ScheduleFuzzMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(ScheduleFuzzMatrix, DifferentialOracle) {
  const auto [seed, schedule, cores] = GetParam();

  FuzzCase fc;
  fc.graph_seed = seed * 0x9e3779b97f4a7c15ULL + 1;
  fc.schedule = schedule;
  fc.schedule_seed = seed ^ 0xfeedULL;
  fc.num_cores = cores;
  // Vary the hardware knobs with the seed so the matrix also covers FIFO
  // backpressure, out-of-order retirement and the optional features.
  fc.header_fifo_capacity = (seed % 3 == 0) ? 8u : 32u * 1024u;
  fc.latency_jitter = (seed % 2 == 1) ? 3u : 0u;
  fc.subobject_copy = seed % 4 == 0;
  fc.markbit_early_read = seed % 5 == 0;
  // Keep individual cases small: the matrix gets its power from breadth.
  fc.graph.max_nodes = 96;
  fc.graph.max_delta = 10;

  const FuzzVerdict v = run_fuzz_case(fc);
  EXPECT_TRUE(v.ok) << v.summary() << "\nrepro: fuzz_gc " << fc.summary();
}

std::string matrix_name(
    const ::testing::TestParamInfo<MatrixParam>& info) {
  const auto [seed, schedule, cores] = info.param;
  return "seed" + std::to_string(seed) + "_" + to_string(schedule) +
         "_cores" + std::to_string(cores);
}

INSTANTIATE_TEST_SUITE_P(
    Bounded, ScheduleFuzzMatrix,
    ::testing::Combine(
        ::testing::Range<std::uint64_t>(1, 14),
        ::testing::Values(SchedulePolicyKind::kFixedPriority,
                          SchedulePolicyKind::kRotating,
                          SchedulePolicyKind::kRandom,
                          SchedulePolicyKind::kAdversarial),
        ::testing::Values(1u, 2u, 4u, 8u)),
    matrix_name);

}  // namespace
}  // namespace hwgc
