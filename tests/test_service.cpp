// HeapService: the multi-tenant heap layer (src/service/).
//
// Covers the service contract end to end: every request accounted (the
// three-way latency split sums exactly), every collection verified (the
// conformance post-structure oracle runs per cycle per shard), shards
// isolated (a fault-injected shard recovers without perturbing a
// neighbor's shadow graph), and backpressure sheds instead of queueing
// without bound.
#include <gtest/gtest.h>

#include <stdexcept>

#include "service/heap_service.hpp"
#include "service/scheduler.hpp"

namespace hwgc {
namespace {

ServiceConfig small_config(std::size_t shards, GcSchedulerKind sched,
                           std::uint64_t seed = 1) {
  ServiceConfig cfg;
  cfg.shards = shards;
  cfg.semispace_words = 4096;
  cfg.sim.coprocessor.num_cores = 4;
  cfg.traffic.seed = seed;
  cfg.scheduler = sched;
  return cfg;
}

TEST(HeapService, ServesVerifiesAndCollects) {
  HeapService service(small_config(2, GcSchedulerKind::kProactive));
  service.serve(3000);

  const SloStats fleet = service.fleet_stats();
  EXPECT_EQ(fleet.offered, 3000u);
  EXPECT_EQ(fleet.completed + fleet.rejected, fleet.offered);
  EXPECT_GT(fleet.collections, 0u) << "run must exercise collection cycles";
  EXPECT_EQ(fleet.oracle_failures, 0u);
  EXPECT_EQ(fleet.read_mismatches, 0u);
  EXPECT_EQ(service.validate_all_shards(), 0u);
}

TEST(HeapService, EveryPolicyVerifiesClean) {
  for (GcSchedulerKind kind : all_schedulers()) {
    HeapService service(small_config(2, kind));
    service.serve(2500);
    const SloStats fleet = service.fleet_stats();
    EXPECT_EQ(fleet.oracle_failures, 0u) << to_string(kind);
    EXPECT_EQ(fleet.read_mismatches, 0u) << to_string(kind);
    EXPECT_EQ(service.validate_all_shards(), 0u) << to_string(kind);
  }
}

TEST(HeapService, ReactiveNeverSchedulesProactiveDoes) {
  HeapService reactive(small_config(2, GcSchedulerKind::kReactive));
  reactive.serve(3000);
  EXPECT_EQ(reactive.fleet_stats().scheduled_collections, 0u);
  EXPECT_GT(reactive.fleet_stats().collections, 0u)
      << "exhaustion must still trigger cycles (observer seam)";

  HeapService proactive(small_config(2, GcSchedulerKind::kProactive));
  proactive.serve(3000);
  EXPECT_GT(proactive.fleet_stats().scheduled_collections, 0u);
}

TEST(HeapService, RoundRobinPacesByPeriod) {
  ServiceConfig cfg = small_config(3, GcSchedulerKind::kRoundRobin);
  cfg.scheduling.round_robin_period = 500;
  HeapService service(cfg);
  service.serve(3000);
  const SloStats fleet = service.fleet_stats();
  // One budgeted cycle per period, spread across the rotation.
  EXPECT_GE(fleet.scheduled_collections, 5u);
  EXPECT_LE(fleet.scheduled_collections, 7u);
  for (std::size_t i = 0; i < service.shard_count(); ++i) {
    EXPECT_GE(service.shard_stats(i).scheduled_collections, 1u) << i;
  }
}

// The exact accounting identity the JSONL validator enforces: the three
// exclusive latency components sum to the recorded total, per shard.
TEST(HeapService, LatencySplitSumsExactly) {
  for (GcSchedulerKind kind : all_schedulers()) {
    HeapService service(small_config(2, kind));
    service.serve(2000);
    for (std::size_t i = 0; i < service.shard_count(); ++i) {
      const SloStats& s = service.shard_stats(i);
      EXPECT_EQ(s.service_cycles + s.queue_cycles + s.stall_cycles,
                s.latency.sum())
          << "shard " << i << " under " << to_string(kind);
      EXPECT_EQ(s.latency.count(), s.completed);
    }
  }
}

// GC-stall conservation. Under the reactive policy every cycle is
// exhaustion-triggered inside some request's execution, so fleet-wide
// stall equals fleet-wide collection time exactly — no cycle lost, none
// double-billed. Under proactive pacing, cycles that drain while a shard
// sits idle are charged to nobody, so stall must come in strictly UNDER
// collection time: the hidden remainder is the policy's whole point.
TEST(HeapService, StallAccountingConservesGcCycles) {
  HeapService reactive(small_config(2, GcSchedulerKind::kReactive));
  reactive.serve(4000);
  const SloStats r = reactive.fleet_stats();
  ASSERT_GT(r.collections, 0u);
  EXPECT_EQ(r.stall_cycles, r.gc_cycle_total);

  HeapService proactive(small_config(2, GcSchedulerKind::kProactive));
  proactive.serve(4000);
  const SloStats p = proactive.fleet_stats();
  ASSERT_GT(p.collections, 0u);
  EXPECT_LE(p.stall_cycles, p.gc_cycle_total);
  EXPECT_LT(p.stall_cycles, p.gc_cycle_total)
      << "proactive pacing should hide at least some GC in idle gaps";
}

TEST(HeapService, BackpressureShedsUnderOverload) {
  ServiceConfig cfg = small_config(2, GcSchedulerKind::kReactive);
  cfg.traffic.load = 8.0;  // overdrive far past the service rate
  cfg.max_backlog = 500;
  HeapService service(cfg);
  service.serve(4000);
  const SloStats fleet = service.fleet_stats();
  EXPECT_GT(fleet.rejected, 0u);
  EXPECT_EQ(fleet.completed + fleet.rejected, fleet.offered);
  EXPECT_EQ(fleet.oracle_failures, 0u);
  EXPECT_EQ(service.validate_all_shards(), 0u);

  // Same overload without the bound: everything queues, nothing sheds.
  ServiceConfig unbounded = cfg;
  unbounded.max_backlog = 0;
  HeapService patient(unbounded);
  patient.serve(4000);
  EXPECT_EQ(patient.fleet_stats().rejected, 0u);
}

TEST(HeapService, FaultShardRecoversNeighborsUnperturbed) {
  ServiceConfig cfg = small_config(3, GcSchedulerKind::kProactive, 2);
  cfg.fault_shard = 1;
  cfg.fault_events = 2;
  HeapService service(cfg);
  service.serve(8000);

  const SloStats& faulted = service.shard_stats(1);
  ASSERT_GT(faulted.collections, 0u)
      << "fault shard must actually collect for this test to mean anything";
  EXPECT_GT(faulted.recovered_collections, 0u);
  EXPECT_EQ(service.fleet_stats().oracle_failures, 0u);

  // Neighbors never saw a fault and must validate cleanly — per shard, so
  // a cross-shard perturbation cannot hide in an aggregate.
  for (std::size_t i = 0; i < service.shard_count(); ++i) {
    EXPECT_EQ(service.validate_shard(i), 0u) << "shard " << i;
    if (i != 1) {
      EXPECT_EQ(service.shard_stats(i).recovered_collections, 0u) << i;
    }
  }
}

TEST(HeapService, ServeIsResumable) {
  HeapService service(small_config(2, GcSchedulerKind::kProactive));
  service.serve(1000);
  const Cycle mid = service.now();
  service.serve(1000);
  EXPECT_GE(service.now(), mid);
  EXPECT_EQ(service.fleet_stats().offered, 2000u);
  EXPECT_EQ(service.requests_offered(), 2000u);
  EXPECT_EQ(service.validate_all_shards(), 0u);
}

TEST(HeapService, ObservationsReflectShardState) {
  HeapService service(small_config(2, GcSchedulerKind::kReactive));
  service.serve(2000);
  for (std::size_t i = 0; i < service.shard_count(); ++i) {
    const ShardObservation o = service.observe(i);
    EXPECT_EQ(o.shard, i);
    EXPECT_GE(o.occupancy, 0.0);
    EXPECT_LE(o.occupancy, 1.0);
    EXPECT_GT(o.live_roots, 0u);
    EXPECT_GE(o.root_high_water, o.live_roots);
    EXPECT_EQ(o.collections, service.shard_stats(i).collections);
  }
}

TEST(HeapService, RejectsBadConfig) {
  ServiceConfig none = small_config(1, GcSchedulerKind::kReactive);
  none.shards = 0;
  EXPECT_THROW(HeapService{none}, std::invalid_argument);

  ServiceConfig bad_fault = small_config(2, GcSchedulerKind::kReactive);
  bad_fault.fault_shard = 2;  // out of range
  bad_fault.fault_events = 1;
  EXPECT_THROW(HeapService{bad_fault}, std::invalid_argument);
}

TEST(Scheduler, NamesRoundTrip) {
  for (GcSchedulerKind kind : all_schedulers()) {
    const auto parsed = parse_scheduler(to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << to_string(kind);
    EXPECT_EQ(*parsed, kind);
    EXPECT_EQ(make_scheduler(kind)->kind(), kind);
  }
  EXPECT_FALSE(parse_scheduler("nonesuch").has_value());
}

}  // namespace
}  // namespace hwgc
