// Bit-determinism of the heap service: two runs from the same seed are
// indistinguishable — same per-shard request counts, same collection
// counts, byte-identical JSONL — under EVERY scheduler policy. This is
// what makes heapd sweeps reproducible and the golden-file tests stable.
#include <gtest/gtest.h>

#include <string>

#include "service/heap_service.hpp"
#include "service/service_metrics.hpp"

namespace hwgc {
namespace {

ServiceConfig run_config(GcSchedulerKind kind, std::uint64_t seed) {
  ServiceConfig cfg;
  cfg.shards = 3;
  cfg.semispace_words = 4096;
  cfg.sim.coprocessor.num_cores = 4;
  cfg.traffic.seed = seed;
  cfg.scheduler = kind;
  return cfg;
}

struct RunResult {
  std::string jsonl;
  std::vector<std::uint64_t> offered;
  std::vector<std::uint64_t> completed;
  std::vector<std::uint64_t> collections;
  Cycle clock = 0;
};

RunResult run_once(GcSchedulerKind kind, std::uint64_t seed,
                   std::uint64_t requests) {
  HeapService service(run_config(kind, seed));
  service.serve(requests);
  RunResult r;
  r.jsonl = service_report_jsonl(service, "determinism");
  for (std::size_t i = 0; i < service.shard_count(); ++i) {
    const SloStats& s = service.shard_stats(i);
    r.offered.push_back(s.offered);
    r.completed.push_back(s.completed);
    r.collections.push_back(s.collections);
  }
  r.clock = service.now();
  EXPECT_EQ(service.validate_all_shards(), 0u);
  return r;
}

class ServiceDeterminism : public ::testing::TestWithParam<GcSchedulerKind> {};

TEST_P(ServiceDeterminism, SameSeedBitIdentical) {
  const RunResult a = run_once(GetParam(), 1, 4000);
  const RunResult b = run_once(GetParam(), 1, 4000);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.collections, b.collections);
  EXPECT_EQ(a.clock, b.clock);
  EXPECT_EQ(a.jsonl, b.jsonl) << "service JSONL must be byte-identical";
}

TEST_P(ServiceDeterminism, SplitServeMatchesOneShot) {
  // Incremental serving (gc_top's frame loop) must land in the same state
  // as one big batch.
  HeapService split(run_config(GetParam(), 1));
  split.serve(1500);
  split.serve(1500);
  split.serve(1000);
  const std::string split_jsonl = service_report_jsonl(split, "determinism");
  const RunResult oneshot = run_once(GetParam(), 1, 4000);
  EXPECT_EQ(split_jsonl, oneshot.jsonl);
}

TEST_P(ServiceDeterminism, DifferentSeedsDiverge) {
  const RunResult a = run_once(GetParam(), 1, 4000);
  const RunResult b = run_once(GetParam(), 2, 4000);
  EXPECT_NE(a.jsonl, b.jsonl);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ServiceDeterminism,
                         ::testing::Values(GcSchedulerKind::kReactive,
                                           GcSchedulerKind::kProactive,
                                           GcSchedulerKind::kRoundRobin),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace hwgc
