// hwgc-service-v1 JSONL: schema emission, the validator's invariants
// (field presence/types, monotone percentiles, exact stall accounting),
// the mixed-schema file gate bench_validate runs in CI, and a golden-file
// pin of the exact bytes (regenerate with HWGC_REGEN_GOLDEN=1).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "service/heap_service.hpp"
#include "service/service_metrics.hpp"
#include "telemetry/metrics.hpp"

namespace hwgc {
namespace {

/// Small deterministic run every test shares (seeded, so the report bytes
/// are stable — see the golden test).
const HeapService& mini_service() {
  static HeapService* service = [] {
    ServiceConfig cfg;
    cfg.shards = 2;
    cfg.semispace_words = 4096;
    cfg.sim.coprocessor.num_cores = 4;
    cfg.traffic.seed = 5;
    cfg.scheduler = GcSchedulerKind::kProactive;
    auto* s = new HeapService(cfg);
    s->serve(1500);
    return s;
  }();
  return *service;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(ServiceJsonl, EmitsPerShardPlusFleetRecords) {
  const auto lines = lines_of(service_report_jsonl(mini_service(), "t"));
  ASSERT_EQ(lines.size(), mini_service().shard_count() + 1);
  for (const auto& line : lines) {
    std::string err;
    EXPECT_TRUE(validate_service_jsonl_line(line, &err)) << err << "\n"
                                                         << line;
  }
  EXPECT_NE(lines.back().find("\"shard\":-1"), std::string::npos)
      << "last record must be the fleet aggregate";
}

// --- validator invariants ---------------------------------------------------

/// One known-good line to tamper with.
std::string good_line() {
  const auto lines = lines_of(service_report_jsonl(mini_service(), "t"));
  return lines.front();
}

std::string replace_field(const std::string& line, const std::string& key,
                          const std::string& replacement) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  EXPECT_NE(at, std::string::npos) << key;
  const std::size_t start = at + needle.size();
  std::size_t end = start;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(0, start) + replacement + line.substr(end);
}

TEST(ServiceJsonl, ValidatorRejectsMissingField) {
  std::string line = good_line();
  const std::size_t at = line.find(",\"stall_cycles\":");
  ASSERT_NE(at, std::string::npos);
  std::size_t end = line.find(',', at + 1);
  if (end == std::string::npos) end = line.find('}', at + 1);
  line.erase(at, end - at);
  std::string err;
  EXPECT_FALSE(validate_service_jsonl_line(line, &err));
  EXPECT_NE(err.find("stall_cycles"), std::string::npos) << err;
}

TEST(ServiceJsonl, ValidatorRejectsWrongSchema) {
  std::string err;
  EXPECT_FALSE(validate_service_jsonl_line(
      replace_field(good_line(), "schema", "\"hwgc-service-v2\""), &err));
}

TEST(ServiceJsonl, ValidatorRejectsNonMonotonePercentiles) {
  std::string err;
  EXPECT_FALSE(validate_service_jsonl_line(
      replace_field(good_line(), "latency_p50", "999999999"), &err));
  EXPECT_NE(err.find("percentile"), std::string::npos) << err;
}

TEST(ServiceJsonl, ValidatorRejectsBrokenStallAccounting) {
  std::string err;
  EXPECT_FALSE(validate_service_jsonl_line(
      replace_field(good_line(), "stall_cycles", "1"), &err));
  EXPECT_NE(err.find("accounting"), std::string::npos) << err;
}

TEST(ServiceJsonl, ValidatorRejectsNegativeComponent) {
  std::string err;
  EXPECT_FALSE(validate_service_jsonl_line(
      replace_field(good_line(), "queue_cycles", "-5"), &err));
}

TEST(ServiceJsonl, ValidatorRejectsCountMismatch) {
  std::string err;
  EXPECT_FALSE(validate_service_jsonl_line(
      replace_field(good_line(), "rejected", "7"), &err));
  EXPECT_NE(err.find("requests"), std::string::npos) << err;
}

TEST(ServiceJsonl, ValidatorRejectsShardOutOfRange) {
  std::string err;
  EXPECT_FALSE(validate_service_jsonl_line(
      replace_field(good_line(), "shard", "99"), &err));
}

// --- resilience fields (fleet-resilience PR additions) -----------------------

TEST(ServiceJsonl, ValidatorRejectsFailedBreakingThePartition) {
  // completed + rejected + failed == requests is the partition identity;
  // inventing a failed request breaks it.
  std::string err;
  EXPECT_FALSE(validate_service_jsonl_line(
      replace_field(good_line(), "failed", "3"), &err));
  EXPECT_NE(err.find("failed"), std::string::npos) << err;
}

TEST(ServiceJsonl, ValidatorRejectsServedRetriedMismatch) {
  std::string err;
  EXPECT_FALSE(validate_service_jsonl_line(
      replace_field(good_line(), "retried", "11"), &err));
  EXPECT_NE(err.find("served + retried"), std::string::npos) << err;
}

TEST(ServiceJsonl, ValidatorRejectsCrashesExceedingFailed) {
  std::string err;
  EXPECT_FALSE(validate_service_jsonl_line(
      replace_field(good_line(), "crashes", "5"), &err));
  EXPECT_NE(err.find("crashes"), std::string::npos) << err;
}

TEST(ServiceJsonl, ValidatorRejectsRestoresExceedingQuarantines) {
  std::string err;
  EXPECT_FALSE(validate_service_jsonl_line(
      replace_field(good_line(), "restores", "4"), &err));
  EXPECT_NE(err.find("restores"), std::string::npos) << err;
}

TEST(ServiceJsonl, ValidatorRejectsUnknownHealthState) {
  std::string err;
  EXPECT_FALSE(validate_service_jsonl_line(
      replace_field(good_line(), "health", "\"zombie\""), &err));
  EXPECT_NE(err.find("health"), std::string::npos) << err;
}

TEST(ServiceJsonl, ValidatorRejectsMissingResilienceField) {
  std::string line = good_line();
  const std::size_t at = line.find(",\"quarantines\":");
  ASSERT_NE(at, std::string::npos);
  std::size_t end = line.find(',', at + 1);
  if (end == std::string::npos) end = line.find('}', at + 1);
  line.erase(at, end - at);
  std::string err;
  EXPECT_FALSE(validate_service_jsonl_line(line, &err));
  EXPECT_NE(err.find("quarantines"), std::string::npos) << err;
}

// --- the mixed-schema file gate ---------------------------------------------

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(ServiceJsonl, MixedFileValidatesBothSchemas) {
  // A heapd-style artifact: a bench-v1 section followed by the service
  // section.
  MetricsRegistry reg;
  MetricsRegistry::Key key;
  key.benchmark = "mixed";
  key.cores = 4;
  key.seed = 5;
  const Runtime& rt = mini_service().runtime(0);
  ASSERT_FALSE(rt.gc_history().empty());
  ServiceConfig scfg = mini_service().config();
  for (const auto& s : rt.gc_history()) reg.record(key, scfg.sim, s);

  const std::string path = temp_path("mixed.json");
  {
    std::ofstream f(path, std::ios::binary);
    f << reg.to_jsonl("mixed") << service_report_jsonl(mini_service(), "t");
  }
  std::vector<std::string> errors;
  EXPECT_TRUE(validate_metrics_jsonl_file(path, &errors))
      << (errors.empty() ? "" : errors.front());

  // The single-schema validators must reject the other section's lines.
  EXPECT_FALSE(validate_bench_jsonl_file(path, nullptr));
  EXPECT_FALSE(validate_service_jsonl_file(path, nullptr));
  std::remove(path.c_str());
}

TEST(ServiceJsonl, MixedFileRejectsUnknownSchema) {
  const std::string path = temp_path("unknown_schema.json");
  {
    std::ofstream f(path, std::ios::binary);
    f << "{\"schema\":\"hwgc-mystery-v1\",\"x\":1}\n";
  }
  std::vector<std::string> errors;
  EXPECT_FALSE(validate_metrics_jsonl_file(path, &errors));
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("schema"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ServiceJsonl, EmptyFileIsInvalid) {
  const std::string path = temp_path("empty.json");
  { std::ofstream f(path, std::ios::binary); }
  EXPECT_FALSE(validate_metrics_jsonl_file(path, nullptr));
  std::remove(path.c_str());
}

TEST(ServiceJsonl, WriteAppendStacksSections) {
  const std::string path = temp_path("stacked.json");
  ASSERT_TRUE(write_service_jsonl(mini_service(), path, "first", false));
  ASSERT_TRUE(write_service_jsonl(mini_service(), path, "second", true));
  std::vector<std::string> errors;
  EXPECT_TRUE(validate_service_jsonl_file(path, &errors))
      << (errors.empty() ? "" : errors.front());
  std::ifstream f(path);
  std::size_t n = 0;
  std::string line;
  while (std::getline(f, line)) n += line.empty() ? 0 : 1;
  EXPECT_EQ(n, 2 * (mini_service().shard_count() + 1));
  std::remove(path.c_str());
}

// --- golden file ------------------------------------------------------------
// Pins the exact bytes of the mini run's report. Regenerate with:
//   HWGC_REGEN_GOLDEN=1 ./test_service_metrics
// then commit tests/golden/service_mini.json — a diff there is a schema or
// determinism change and must be intentional.

TEST(ServiceJsonl, GoldenReportStable) {
  const std::string text = service_report_jsonl(mini_service(), "golden");
  const std::string path = std::string(HWGC_GOLDEN_DIR) + "/service_mini.json";
  if (std::getenv("HWGC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << text;
    ASSERT_TRUE(out.good()) << "failed to regenerate " << path;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — regenerate with HWGC_REGEN_GOLDEN=1";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), text)
      << "service JSONL drifted from tests/golden/service_mini.json; if "
         "intended, HWGC_REGEN_GOLDEN=1 and commit";
}

}  // namespace
}  // namespace hwgc
