// Parallel-vs-serial bit-determinism of the heap service (ISSUE 6
// tentpole): running heapd shards on a host thread pool must preserve the
// serial semantics EXACTLY — byte-identical hwgc-service-v1 JSONL and
// equal ServiceMetrics — because each shard is an independent simulator
// and the conductor joins at every data dependency (closed-loop arrival,
// admission control, fleet observation). Matrix: 2/4/8 host threads vs
// serial, 3 seeds x 3 schedulers, plus the join-heavy variants (closed
// loop, admission control, fault recovery).
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "service/heap_service.hpp"
#include "service/service_metrics.hpp"

namespace hwgc {
namespace {

ServiceConfig base_config(GcSchedulerKind kind, std::uint64_t seed) {
  ServiceConfig cfg;
  cfg.shards = 4;
  cfg.semispace_words = 4096;
  cfg.sim.coprocessor.num_cores = 4;
  cfg.traffic.seed = seed;
  cfg.scheduler = kind;
  return cfg;
}

struct RunResult {
  std::string jsonl;
  std::vector<std::uint64_t> offered, completed, rejected, collections,
      scheduled;
  std::vector<Cycle> service_cycles, queue_cycles, stall_cycles;
  Cycle clock = 0;
  std::uint64_t fleet_offered = 0;
};

RunResult run_once(ServiceConfig cfg, std::size_t threads,
                   std::uint64_t requests) {
  cfg.host_threads = threads;
  HeapService service(cfg);
  service.serve(requests);
  RunResult r;
  r.jsonl = service_report_jsonl(service, "parallel");
  for (std::size_t i = 0; i < service.shard_count(); ++i) {
    const SloStats& s = service.shard_stats(i);
    r.offered.push_back(s.offered);
    r.completed.push_back(s.completed);
    r.rejected.push_back(s.rejected);
    r.collections.push_back(s.collections);
    r.scheduled.push_back(s.scheduled_collections);
    r.service_cycles.push_back(s.service_cycles);
    r.queue_cycles.push_back(s.queue_cycles);
    r.stall_cycles.push_back(s.stall_cycles);
  }
  r.clock = service.now();
  r.fleet_offered = service.requests_offered();
  EXPECT_EQ(service.validate_all_shards(), 0u);
  return r;
}

void expect_equal(const RunResult& serial, const RunResult& parallel,
                  const std::string& what) {
  EXPECT_EQ(serial.offered, parallel.offered) << what;
  EXPECT_EQ(serial.completed, parallel.completed) << what;
  EXPECT_EQ(serial.rejected, parallel.rejected) << what;
  EXPECT_EQ(serial.collections, parallel.collections) << what;
  EXPECT_EQ(serial.scheduled, parallel.scheduled) << what;
  EXPECT_EQ(serial.service_cycles, parallel.service_cycles) << what;
  EXPECT_EQ(serial.queue_cycles, parallel.queue_cycles) << what;
  EXPECT_EQ(serial.stall_cycles, parallel.stall_cycles) << what;
  EXPECT_EQ(serial.clock, parallel.clock) << what;
  EXPECT_EQ(serial.fleet_offered, parallel.fleet_offered) << what;
  EXPECT_EQ(serial.jsonl, parallel.jsonl)
      << what << ": service JSONL must be byte-identical";
}

class ServiceParallel
    : public ::testing::TestWithParam<std::tuple<GcSchedulerKind,
                                                 std::uint64_t>> {};

TEST_P(ServiceParallel, MatchesSerialAtEveryThreadCount) {
  const auto [kind, seed] = GetParam();
  const RunResult serial = run_once(base_config(kind, seed), 1, 1500);
  for (std::size_t threads : {2u, 4u, 8u}) {
    const RunResult parallel =
        run_once(base_config(kind, seed), threads, 1500);
    expect_equal(serial, parallel,
                 std::string(to_string(kind)) + "/seed=" +
                     std::to_string(seed) + "/threads=" +
                     std::to_string(threads));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchedulerBySeed, ServiceParallel,
    ::testing::Combine(::testing::Values(GcSchedulerKind::kReactive,
                                         GcSchedulerKind::kProactive,
                                         GcSchedulerKind::kRoundRobin),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ServiceParallelModes, ClosedLoopMatchesSerial) {
  // Closed-loop arrivals latch onto the target shard's next-free time, so
  // the conductor must join that shard's lane before sampling — the
  // join-heaviest traffic mode.
  ServiceConfig cfg = base_config(GcSchedulerKind::kReactive, 7);
  cfg.traffic.open_loop = false;
  const RunResult serial = run_once(cfg, 1, 1200);
  for (std::size_t threads : {2u, 8u}) {
    expect_equal(serial, run_once(cfg, threads, 1200),
                 "closed-loop threads=" + std::to_string(threads));
  }
}

TEST(ServiceParallelModes, AdmissionControlMatchesSerial) {
  // Rejections happen conductor-side after a join; the reject/complete
  // split must not depend on the thread count.
  ServiceConfig cfg = base_config(GcSchedulerKind::kReactive, 5);
  cfg.traffic.load = 16.0;  // overdrive so the backlog bound actually trips
  cfg.max_backlog = 1500;
  const RunResult serial = run_once(cfg, 1, 1500);
  std::uint64_t total_rejected = 0;
  for (auto r : serial.rejected) total_rejected += r;
  EXPECT_GT(total_rejected, 0u) << "config must actually shed load";
  for (std::size_t threads : {2u, 8u}) {
    expect_equal(serial, run_once(cfg, threads, 1500),
                 "admission threads=" + std::to_string(threads));
  }
}

TEST(ServiceParallelModes, FaultRecoveryMatchesSerial) {
  // The fault-injected shard runs collections through the recovery ladder
  // inside its own lane; neighbors must still match serial byte-for-byte.
  ServiceConfig cfg = base_config(GcSchedulerKind::kProactive, 2);
  cfg.fault_shard = 1;
  cfg.fault_events = 2;
  const RunResult serial = run_once(cfg, 1, 1200);
  expect_equal(serial, run_once(cfg, 4, 1200), "fault threads=4");
}

TEST(ServiceParallelModes, SplitServeMatchesOneShot) {
  // Incremental serving must drain at every serve() boundary and land in
  // the same state as one big batch, in parallel mode too.
  ServiceConfig cfg = base_config(GcSchedulerKind::kRoundRobin, 1);
  cfg.host_threads = 4;
  HeapService split(cfg);
  split.serve(700);
  split.serve(500);
  split.serve(300);
  const std::string split_jsonl = service_report_jsonl(split, "parallel");
  const RunResult oneshot = run_once(cfg, 4, 1500);
  EXPECT_EQ(split_jsonl, oneshot.jsonl);
}

}  // namespace
}  // namespace hwgc
