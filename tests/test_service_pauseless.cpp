// Pauseless scheduler mode (GcSchedulerKind::kPauseless): sessions keep
// executing through collection cycles. Every shard collects through the
// SATB snapshot collector (src/concurrent_mutator/, DESIGN.md §17); only
// the two rendezvous pauses land in the stall component, and the
// concurrent copying phase drains as small per-request service overhead
// recorded in SloStats::gc_concurrent_cycles. This suite is the A/B proof
// the mode exists for: against the reactive baseline on identical traffic,
// the p999 latency and the GC stall total both drop, the win is visible in
// committed hwgc-service-v1 JSONL (tests/golden/pauseless_ab.json), and
// serial vs shard-pool runs stay byte-identical.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "profile/request_trace.hpp"
#include "service/heap_service.hpp"
#include "service/scheduler.hpp"
#include "service/service_metrics.hpp"

namespace hwgc {
namespace {

ServiceConfig ab_config(GcSchedulerKind sched) {
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.semispace_words = 4096;
  cfg.sim.coprocessor.num_cores = 4;
  cfg.traffic.seed = 7;
  cfg.scheduler = sched;
  return cfg;
}

constexpr std::uint64_t kAbRequests = 4000;

/// Pulls a numeric field out of one flat JSON line ("key":123).
std::uint64_t field_u64(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) {
    throw std::runtime_error("field " + key + " missing");
  }
  return std::strtoull(line.c_str() + pos + needle.size(), nullptr, 10);
}

/// The fleet record (shard = -1) of the suite's JSONL block.
std::string fleet_line(const std::string& jsonl, const std::string& suite) {
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"suite\":\"" + suite + "\"") != std::string::npos &&
        line.find("\"shard\":-1") != std::string::npos) {
      return line;
    }
  }
  throw std::runtime_error("no fleet record for suite " + suite);
}

TEST(PauselessService, CollectsThroughSnapshotCollectorCleanly) {
  HeapService service(ab_config(GcSchedulerKind::kPauseless));
  service.serve(kAbRequests);
  const SloStats fleet = service.fleet_stats();
  EXPECT_EQ(fleet.offered, kAbRequests);
  ASSERT_GT(fleet.collections, 0u);
  EXPECT_GT(fleet.scheduled_collections, 0u)
      << "occupancy pacing should schedule cycles proactively";
  EXPECT_EQ(fleet.oracle_failures, 0u)
      << "every snapshot cycle must pass the SATB structure oracle";
  EXPECT_EQ(fleet.read_mismatches, 0u);
  EXPECT_EQ(service.validate_all_shards(), 0u);
  // The split is real: concurrent work was drained inside service time,
  // and what reached the stall component is strictly less than the total
  // collection time (the mode's entire point).
  EXPECT_GT(fleet.gc_concurrent_cycles, 0u);
  EXPECT_LE(fleet.gc_concurrent_cycles, fleet.service_cycles);
  EXPECT_LT(fleet.stall_cycles + fleet.gc_concurrent_cycles,
            fleet.gc_cycle_total);
  // Latency partition survives the overhead drain.
  EXPECT_EQ(fleet.service_cycles + fleet.queue_cycles + fleet.stall_cycles,
            fleet.latency.sum());
}

TEST(PauselessService, BeatsReactiveTailLatencyOnIdenticalTraffic) {
  HeapService reactive(ab_config(GcSchedulerKind::kReactive));
  reactive.serve(kAbRequests);
  HeapService pauseless(ab_config(GcSchedulerKind::kPauseless));
  pauseless.serve(kAbRequests);

  const SloStats r = reactive.fleet_stats();
  const SloStats p = pauseless.fleet_stats();
  ASSERT_GT(r.collections, 0u);
  ASSERT_GT(p.collections, 0u);
  EXPECT_EQ(r.gc_concurrent_cycles, 0u) << "STW mode must not drain debt";
  EXPECT_LT(p.stall_cycles, r.stall_cycles)
      << "pauseless collection must convert stall into concurrent overhead";
  EXPECT_LT(p.latency.percentile(0.999), r.latency.percentile(0.999))
      << "the p999 win is the mode's acceptance criterion";
  EXPECT_LT(p.slo_violations, r.slo_violations + 1);
}

TEST(PauselessService, SerialAndShardPoolRunsAreByteIdentical) {
  ServiceConfig serial_cfg = ab_config(GcSchedulerKind::kPauseless);
  serial_cfg.host_threads = 1;
  ServiceConfig pool_cfg = ab_config(GcSchedulerKind::kPauseless);
  pool_cfg.host_threads = 4;

  HeapService serial(serial_cfg);
  serial.serve(kAbRequests);
  HeapService pool(pool_cfg);
  pool.serve(kAbRequests);

  EXPECT_EQ(service_report_jsonl(serial, "pauseless-identity"),
            service_report_jsonl(pool, "pauseless-identity"));
}

TEST(PauselessService, SpanTreeSplitsConcurrentOverheadFromStall) {
  ServiceConfig cfg = ab_config(GcSchedulerKind::kPauseless);
  cfg.profile.enabled = true;
  cfg.profile.exemplars = 8;
  HeapService service(cfg);
  service.serve(kAbRequests);

  bool saw_concurrent_span = false;
  for (const RequestExemplar& e : service.slowest_requests()) {
    for (const SpanRecord& s : exemplar_spans(e)) {
      if (s.name != "gc-concurrent") continue;
      saw_concurrent_span = true;
      EXPECT_EQ(s.gc_cycles, e.gc_concurrent);
      EXPECT_EQ(s.gc_collection, -1);
    }
  }
  EXPECT_TRUE(saw_concurrent_span)
      << "slow requests under pauseless load should carry drained overhead";

  // The whole profile export still passes the hwgc-profile-v1 validator.
  const std::string path = ::testing::TempDir() + "pauseless_profile.json";
  ASSERT_TRUE(write_profile_jsonl(service, path, "pauseless-profile"));
  std::vector<std::string> errors;
  EXPECT_TRUE(validate_metrics_jsonl_file(path, &errors))
      << (errors.empty() ? "" : errors.front());
  std::remove(path.c_str());
}

TEST(PauselessService, RejectsFaultInjectionConfigs) {
  ServiceConfig faulted = ab_config(GcSchedulerKind::kPauseless);
  faulted.fault_shard = 0;
  faulted.fault_events = 2;
  EXPECT_THROW(HeapService{faulted}, std::invalid_argument);

  ServiceConfig stormed = ab_config(GcSchedulerKind::kPauseless);
  stormed.storm.shard_fraction = 0.5;
  EXPECT_THROW(HeapService{stormed}, std::invalid_argument);
}

// The committed A/B evidence: one golden JSONL with the reactive and the
// pauseless fleet under identical traffic, byte-pinned. A reader can
// verify the p999 reduction straight from the committed artifact — and
// this test re-derives and re-asserts it on every run. Regenerate with
//   HWGC_REGEN_GOLDEN=1 ./test_service_pauseless
// then commit tests/golden/pauseless_ab.json.
TEST(PauselessService, GoldenAbJsonlPinsTheTailWin) {
  HeapService reactive(ab_config(GcSchedulerKind::kReactive));
  reactive.serve(kAbRequests);
  HeapService pauseless(ab_config(GcSchedulerKind::kPauseless));
  pauseless.serve(kAbRequests);

  const std::string jsonl = service_report_jsonl(reactive, "ab-reactive") +
                            service_report_jsonl(pauseless, "ab-pauseless");

  const std::string path = std::string(HWGC_GOLDEN_DIR) + "/pauseless_ab.json";
  if (std::getenv("HWGC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << jsonl;
    ASSERT_TRUE(out.good()) << "failed to regenerate " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << path << " missing — regenerate with HWGC_REGEN_GOLDEN=1";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(jsonl, golden.str())
      << "pauseless A/B JSONL drifted from tests/golden/pauseless_ab.json; "
         "if intended, HWGC_REGEN_GOLDEN=1 and commit";

  // Every committed line passes the schema gate.
  std::vector<std::string> errors;
  EXPECT_TRUE(validate_service_jsonl_file(path, &errors))
      << (errors.empty() ? "" : errors.front());

  // The win, read back out of the committed bytes.
  const std::string r = fleet_line(golden.str(), "ab-reactive");
  const std::string p = fleet_line(golden.str(), "ab-pauseless");
  EXPECT_LT(field_u64(p, "latency_p999"), field_u64(r, "latency_p999"));
  EXPECT_LT(field_u64(p, "stall_cycles"), field_u64(r, "stall_cycles"));
  EXPECT_GT(field_u64(p, "gc_concurrent_cycles"), 0u);
  EXPECT_EQ(field_u64(r, "gc_concurrent_cycles"), 0u);
}

}  // namespace
}  // namespace hwgc
