// ShardPool contract: per-key FIFO ordering (the property HeapService's
// bit-determinism rides on), inline degeneration at <= 1 thread, join
// semantics, and the drain-then-rethrow exception contract.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "sim/shard_pool.hpp"

namespace hwgc {
namespace {

TEST(ShardPool, InlineModeRunsOnCallerThread) {
  ShardPool pool(2, 1);
  EXPECT_FALSE(pool.parallel());
  int order = 0;
  pool.submit(0, [&] { EXPECT_EQ(order++, 0); });
  pool.submit(1, [&] { EXPECT_EQ(order++, 1); });
  // No-ops, but must be callable.
  pool.join(0);
  pool.join_all();
  EXPECT_EQ(order, 2);
}

TEST(ShardPool, InlineModePropagatesExceptionsImmediately) {
  ShardPool pool(1, 0);
  EXPECT_THROW(pool.submit(0, [] { throw std::runtime_error("boom"); }),
               std::runtime_error);
}

TEST(ShardPool, PerKeyFifoOrderIsPreserved) {
  constexpr std::size_t kKeys = 4;
  constexpr int kTasks = 200;
  ShardPool pool(kKeys, 4);
  ASSERT_TRUE(pool.parallel());
  std::vector<std::vector<int>> seen(kKeys);
  std::mutex mu[kKeys];
  for (int t = 0; t < kTasks; ++t) {
    for (std::size_t k = 0; k < kKeys; ++k) {
      pool.submit(k, [&, k, t] {
        std::lock_guard<std::mutex> lk(mu[k]);
        seen[k].push_back(t);
      });
    }
  }
  pool.join_all();
  for (std::size_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(seen[k].size(), static_cast<std::size_t>(kTasks));
    for (int t = 0; t < kTasks; ++t) EXPECT_EQ(seen[k][t], t) << "key " << k;
  }
}

TEST(ShardPool, JoinWaitsForOneKeyOnly) {
  ShardPool pool(2, 2);
  std::atomic<int> done{0};
  for (int t = 0; t < 50; ++t) {
    pool.submit(0, [&] { done.fetch_add(1); });
  }
  pool.join(0);
  EXPECT_GE(done.load(), 50);
  pool.join_all();
}

TEST(ShardPool, ExceptionRethrownAtJoinAfterDrain) {
  ShardPool pool(2, 2);
  std::atomic<int> ran{0};
  pool.submit(0, [&] {
    ran.fetch_add(1);
    throw std::runtime_error("shard 0 died");
  });
  // Later tasks may be discarded (serial execution would not have reached
  // them); the exception must surface at the join.
  for (int t = 0; t < 20; ++t) {
    pool.submit(1, [&] { ran.fetch_add(1); });
  }
  EXPECT_THROW(pool.join_all(), std::runtime_error);
  // Once reported, the failure is consumed: the pool is reusable.
  pool.submit(1, [&] { ran.fetch_add(1); });
  pool.join_all();
  EXPECT_GE(ran.load(), 2);
}

TEST(ShardPool, ManyKeysFewThreads) {
  // More lanes than workers: the ready-list must multiplex fairly enough
  // that everything drains.
  constexpr std::size_t kKeys = 64;
  ShardPool pool(kKeys, 3);
  std::atomic<int> done{0};
  for (std::size_t k = 0; k < kKeys; ++k) {
    for (int t = 0; t < 8; ++t) {
      pool.submit(k, [&] { done.fetch_add(1); });
    }
  }
  pool.join_all();
  EXPECT_EQ(done.load(), static_cast<int>(kKeys * 8));
}

}  // namespace
}  // namespace hwgc
