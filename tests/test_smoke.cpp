// End-to-end smoke test: every benchmark workload collects correctly on the
// coprocessor simulator and on the sequential software reference.
#include <gtest/gtest.h>

#include "baselines/sequential_cheney.hpp"
#include "core/coprocessor.hpp"
#include "heap/verifier.hpp"
#include "workloads/benchmarks.hpp"

namespace hwgc {
namespace {

TEST(Smoke, SequentialCheneyCollectsJlisp) {
  Workload w = make_benchmark(BenchmarkId::kJlisp, 0.1);
  const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);
  const SequentialGcStats stats = SequentialCheney::collect(*w.heap);
  EXPECT_EQ(stats.objects_copied, pre.objects.size());
  const VerifyResult res = verify_collection(pre, *w.heap);
  EXPECT_TRUE(res.ok) << res.summary();
}

TEST(Smoke, CoprocessorCollectsJlisp8Cores) {
  Workload w = make_benchmark(BenchmarkId::kJlisp, 0.1);
  const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);
  SimConfig cfg;
  cfg.coprocessor.num_cores = 8;
  Coprocessor coproc(cfg, *w.heap);
  const GcCycleStats stats = coproc.collect();
  EXPECT_EQ(stats.objects_copied, pre.objects.size());
  EXPECT_GT(stats.total_cycles, 0u);
  EXPECT_TRUE(stats.lock_order_violations.empty());
  const VerifyResult res = verify_collection(pre, *w.heap);
  EXPECT_TRUE(res.ok) << res.summary();
}

TEST(Smoke, AllBenchmarksTinyScaleAllCoreCounts) {
  for (BenchmarkId id : all_benchmarks()) {
    for (std::uint32_t cores : {1u, 3u, 16u}) {
      Workload w = make_benchmark(id, 0.01);
      const HeapSnapshot pre = HeapSnapshot::capture(*w.heap);
      SimConfig cfg;
      cfg.coprocessor.num_cores = cores;
      Coprocessor coproc(cfg, *w.heap);
      const GcCycleStats stats = coproc.collect();
      EXPECT_EQ(stats.objects_copied, pre.objects.size())
          << benchmark_name(id) << " cores=" << cores;
      const VerifyResult res = verify_collection(pre, *w.heap);
      EXPECT_TRUE(res.ok)
          << benchmark_name(id) << " cores=" << cores << ": " << res.summary();
    }
  }
}

}  // namespace
}  // namespace hwgc
