// Unit and agitation coverage for the pauseless SATB snapshot collector
// (src/concurrent_mutator/). The conformance matrix already sweeps it
// through the property oracle; this binary pins the collector-specific
// contracts — quiescent determinism, the barrier/reconciliation counter
// semantics, shared-allocation backoff, torture agitation with real
// mutator threads, and the harness adapter's payload plumbing. Carries the
// concurrent-mutator-smoke label: the TSan CI job runs exactly this suite.
#include <gtest/gtest.h>

#include "concurrent_mutator/snapshot_collector.hpp"
#include "conformance/conformance.hpp"
#include "conformance/harness.hpp"
#include "heap/object_model.hpp"
#include "workloads/random_graph.hpp"

namespace hwgc {
namespace {

GraphPlan small_plan(std::uint64_t seed, std::uint32_t nodes = 120) {
  RandomGraphConfig g;
  g.nodes = nodes;
  return make_random_plan(seed, g);
}

TEST(SnapshotCollector, QuiescentCycleIsDeterministic) {
  const GraphPlan plan = small_plan(7);
  SnapshotCollector::Config cfg;
  cfg.threads = 1;
  cfg.mutator_threads = 0;  // quiescent: no mutators, fully deterministic
  Workload a = materialize(plan, 2.0);
  Workload b = materialize(plan, 2.0);
  const SnapshotGcStats sa = SnapshotCollector(cfg).collect(*a.heap);
  const SnapshotGcStats sb = SnapshotCollector(cfg).collect(*b.heap);
  EXPECT_EQ(sa.objects_copied, sb.objects_copied);
  EXPECT_EQ(sa.words_copied, sb.words_copied);
  EXPECT_EQ(sa.cas_ops, sb.cas_ops);
  EXPECT_EQ(sa.cas_failures, sb.cas_failures);
  EXPECT_EQ(sa.pause_cycles, sb.pause_cycles);
  EXPECT_EQ(sa.concurrent_cycles, sb.concurrent_cycles);
  EXPECT_EQ(sa.reconciliation_repairs, 0u);
  EXPECT_EQ(sa.dual_writes, 0u);
  EXPECT_EQ(sa.safe_point_waits, 0u);
  EXPECT_EQ(sa.validation_mismatches, 0u);
  EXPECT_GT(sa.objects_copied, 0u);
  // Heap images of deterministic runs are bit-identical.
  ASSERT_EQ(a.heap->alloc_ptr(), b.heap->alloc_ptr());
  for (Addr w = a.heap->layout().current_base(); w < a.heap->alloc_ptr();
       ++w) {
    ASSERT_EQ(a.heap->memory().load(w), b.heap->memory().load(w)) << w;
  }
}

TEST(SnapshotCollector, QuiescentTotalsStableAcrossWorkerCounts) {
  const GraphPlan plan = small_plan(11);
  SnapshotGcStats base;
  for (std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    SnapshotCollector::Config cfg;
    cfg.threads = threads;
    cfg.mutator_threads = 0;
    Workload w = materialize(plan, 2.0);
    const SnapshotGcStats s = SnapshotCollector(cfg).collect(*w.heap);
    if (threads == 1) {
      base = s;
      continue;
    }
    // Schedules differ but the copied set cannot: every snapshot-reachable
    // object is evacuated exactly once at any width.
    EXPECT_EQ(s.objects_copied, base.objects_copied) << threads;
    EXPECT_EQ(s.words_copied, base.words_copied) << threads;
  }
}

TEST(SnapshotCollector, MutatorCountersAndValidation) {
  SnapshotCollector::Config cfg;
  cfg.threads = 2;
  cfg.mutator_threads = 2;
  cfg.mutator_registers = 8;
  cfg.mutator_seed = 5;
  Workload w = materialize(small_plan(5), 3.0);
  const SnapshotGcStats s = SnapshotCollector(cfg).collect(*w.heap);
  EXPECT_EQ(s.validation_mismatches, 0u);
  EXPECT_EQ(s.mutator_threads, 2u);
  EXPECT_GT(s.mutator_ops, 0u);
  // Warmup guarantees pre-cycle barrier traffic; pause 1 parks every
  // mutator at least once (a park can legally serve both pauses when the
  // concurrent window outruns the thread's next poll).
  EXPECT_GT(s.mutator_allocations, 0u);
  EXPECT_GE(s.safe_point_waits, cfg.mutator_threads);
  // The concurrent window is real: at least the warmup ops ran in kIdle,
  // and the barrier saw pointer stores in one phase or the other.
  EXPECT_GE(s.mutator_ops, 2u * cfg.mutator_warmup_ops);
  EXPECT_GT(s.dual_writes + s.snapshot_stores, 0u);
  // Everything the reconcile pause repaired came from a logged store.
  EXPECT_LE(s.reconciliation_repairs, s.snapshot_stores);
}

TEST(SnapshotCollector, SurvivesTortureAgitationAcrossSeeds) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    ConformanceCase c;
    c.plan = small_plan(seed);
    c.harness.threads = 4;
    c.harness.mutator_threads = 3;
    c.harness.mutator_seed = seed * 31 + 1;
    c.harness.torture.seed = seed * 2654435761ULL + 17;
    c.harness.torture.yield_period = 3;
    const ConformanceVerdict v =
        run_conformance_case(CollectorId::kSnapshot, c);
    EXPECT_TRUE(v.ok) << "seed " << seed << ": " << v.summary();
  }
}

TEST(SnapshotCollector, HarnessAdapterCarriesSnapshotPayload) {
  HarnessConfig hc;
  hc.threads = 2;
  Workload w = materialize(small_plan(3), 3.0);
  const CycleReport r =
      make_harness(CollectorId::kSnapshot, hc)->collect(*w.heap);
  ASSERT_TRUE(r.snapshot.has_value());
  EXPECT_FALSE(r.coproc || r.sequential || r.parallel || r.concurrent);
  EXPECT_EQ(r.objects_copied, r.snapshot->objects_copied);
  EXPECT_EQ(r.words_copied, r.snapshot->words_copied);
  EXPECT_EQ(r.sync_ops, r.snapshot->cas_ops);
  EXPECT_EQ(r.validation_mismatches, r.snapshot->validation_mismatches);
  EXPECT_GT(r.snapshot->pause_cycles, 0u);
}

TEST(SnapshotCollector, SharedAllocationBacksOffInsteadOfThrowing) {
  Workload w = materialize(small_plan(2, 40), 2.0);
  Heap& heap = *w.heap;
  // Fill the current space to the brim through the thread-safe bump path;
  // exhaustion must surface as kNullPtr, never as an exception or a wild
  // allocation past the semispace end.
  std::size_t granted = 0;
  for (;;) {
    const Addr obj = heap.allocate_shared(2, 2);
    if (obj == kNullPtr) break;
    ASSERT_LT(obj, heap.layout().current_end());
    ++granted;
    ASSERT_LT(granted, std::size_t{1} << 24) << "allocator never exhausted";
  }
  EXPECT_GT(granted, 0u);
  EXPECT_EQ(heap.allocate_shared(2, 2), kNullPtr);  // stays exhausted
  EXPECT_LE(heap.alloc_ptr(), heap.layout().current_end());
}

TEST(SnapshotCollector, BackToBackCyclesReuseBothSemispaces) {
  // Two consecutive pauseless cycles flip the heap twice; the second cycle
  // must not trip over the first cycle's leftover headers (black bits in
  // what is now fromspace, stale words in what is now tospace).
  SnapshotCollector::Config cfg;
  cfg.threads = 2;
  cfg.mutator_threads = 2;
  cfg.mutator_registers = 6;
  Workload w = materialize(small_plan(9), 3.0);
  const SnapshotGcStats first = SnapshotCollector(cfg).collect(*w.heap);
  EXPECT_EQ(first.validation_mismatches, 0u);
  cfg.mutator_seed = 99;
  const SnapshotGcStats second = SnapshotCollector(cfg).collect(*w.heap);
  EXPECT_EQ(second.validation_mismatches, 0u);
  // The second cycle's live set includes what the first cycle's mutators
  // left reachable in their register slots.
  EXPECT_GE(second.objects_copied, first.objects_copied);
}

TEST(ObjectModel, OffsetClassifiesPointerAndDataFields) {
  const Word attrs = make_attributes(3, 2);
  EXPECT_FALSE(offset_is_pointer_field(attrs, 0));  // attributes word
  EXPECT_FALSE(offset_is_pointer_field(attrs, 1));  // link word
  EXPECT_TRUE(offset_is_pointer_field(attrs, kHeaderWords));
  EXPECT_TRUE(offset_is_pointer_field(attrs, kHeaderWords + 2));
  EXPECT_FALSE(offset_is_pointer_field(attrs, kHeaderWords + 3));  // data
  EXPECT_FALSE(offset_is_pointer_field(make_attributes(0, 4), kHeaderWords));
  // Flag bits must not leak into the pointer-count window.
  EXPECT_TRUE(
      offset_is_pointer_field(make_attributes(1, 0) | kBlackBit, 2));
}

}  // namespace
}  // namespace hwgc
