// Counter-determinism contract for ParallelGcStats (and the simulators).
//
// At one thread every software baseline is a deterministic program: same
// seed + same config => bit-identical counters, including the torture
// agitator's perturbation stream. At higher thread counts the host
// scheduler owns the interleaving, so only the schedule-independent subset
// (what was copied) is promised — the schedule-dependent sync-op counters
// varying run to run is precisely the software-synchronization cost
// nondeterminism the paper's hardware arbitration removes.
#include <gtest/gtest.h>

#include "conformance/harness.hpp"
#include "workloads/random_graph.hpp"

namespace hwgc {
namespace {

constexpr std::uint64_t kGraphSeed = 42;

CycleReport run_once(CollectorId id, std::uint32_t threads,
                     bool torture = true) {
  RandomGraphConfig g;
  g.nodes = 90;
  const GraphPlan plan = make_random_plan(kGraphSeed, g);
  Workload w = materialize(plan, 4.0);  // headroom for the LAB collectors
  HarnessConfig cfg;
  cfg.threads = threads;
  cfg.schedule_seed = 7;
  cfg.mutator_seed = 7;
  if (torture) cfg.torture.seed = 0xdecafbad;
  return make_harness(id, cfg)->collect(*w.heap);
}

const CollectorId kSoftwareBaselines[] = {
    CollectorId::kNaive, CollectorId::kChunked, CollectorId::kPackets,
    CollectorId::kStealing};

TEST(StatsDeterminism, SingleThreadCountersAreBitIdentical) {
  for (CollectorId id : kSoftwareBaselines) {
    const CycleReport a = run_once(id, 1);
    const CycleReport b = run_once(id, 1);
    ASSERT_TRUE(a.parallel && b.parallel) << to_string(id);
    const ParallelGcStats& sa = *a.parallel;
    const ParallelGcStats& sb = *b.parallel;
    EXPECT_EQ(sa.objects_copied, sb.objects_copied) << to_string(id);
    EXPECT_EQ(sa.words_copied, sb.words_copied) << to_string(id);
    EXPECT_EQ(sa.wasted_words, sb.wasted_words) << to_string(id);
    EXPECT_EQ(sa.cas_ops, sb.cas_ops) << to_string(id);
    EXPECT_EQ(sa.cas_failures, sb.cas_failures) << to_string(id);
    EXPECT_EQ(sa.mutex_acquisitions, sb.mutex_acquisitions) << to_string(id);
    EXPECT_EQ(sa.steal_attempts, sb.steal_attempts) << to_string(id);
    // A lone thread can never lose an evacuation race.
    EXPECT_EQ(sa.cas_failures, 0u) << to_string(id);
  }
}

TEST(StatsDeterminism, CopyCountersAreScheduleIndependent) {
  for (CollectorId id : kSoftwareBaselines) {
    const CycleReport a = run_once(id, 4);
    const CycleReport b = run_once(id, 4);
    // What was copied is fixed by the graph, not by the interleaving.
    EXPECT_EQ(a.objects_copied, b.objects_copied) << to_string(id);
    EXPECT_EQ(a.words_copied, b.words_copied) << to_string(id);
    EXPECT_EQ(a.evacuations, b.evacuations) << to_string(id);
    // Consistency invariants that hold under any schedule.
    ASSERT_TRUE(a.parallel) << to_string(id);
    // Every evacuation costs at least one synchronization operation in
    // every software scheme (the cost hardware arbitration makes free).
    EXPECT_GE(a.sync_ops, a.objects_copied) << to_string(id);
  }
}

TEST(StatsDeterminism, SingleThreadMatchesAnyWidth) {
  // The copied set must also agree across thread counts.
  for (CollectorId id : kSoftwareBaselines) {
    const CycleReport one = run_once(id, 1);
    const CycleReport eight = run_once(id, 8);
    EXPECT_EQ(one.objects_copied, eight.objects_copied) << to_string(id);
    EXPECT_EQ(one.words_copied, eight.words_copied) << to_string(id);
  }
}

TEST(StatsDeterminism, SimulatorsAreFullyDeterministic) {
  // The two cycle-accurate simulators promise determinism at any core
  // count: same seeds => same cycle counts, not just same copy totals.
  const CycleReport a = run_once(CollectorId::kCoprocessor, 8, false);
  const CycleReport b = run_once(CollectorId::kCoprocessor, 8, false);
  ASSERT_TRUE(a.coproc && b.coproc);
  EXPECT_EQ(a.coproc->total_cycles, b.coproc->total_cycles);
  EXPECT_EQ(a.coproc->objects_copied, b.coproc->objects_copied);
  EXPECT_EQ(a.coproc->worklist_empty_cycles, b.coproc->worklist_empty_cycles);
  EXPECT_EQ(a.coproc->mem_requests, b.coproc->mem_requests);

  const CycleReport c = run_once(CollectorId::kConcurrent, 4, false);
  const CycleReport d = run_once(CollectorId::kConcurrent, 4, false);
  ASSERT_TRUE(c.concurrent && d.concurrent);
  EXPECT_EQ(c.concurrent->gc.total_cycles, d.concurrent->gc.total_cycles);
  EXPECT_EQ(c.concurrent->mutator_ops, d.concurrent->mutator_ops);
  EXPECT_EQ(c.concurrent->barrier_gray_reads, d.concurrent->barrier_gray_reads);
  EXPECT_EQ(c.concurrent->barrier_evacuations,
            d.concurrent->barrier_evacuations);
  EXPECT_EQ(c.concurrent->barrier_dual_writes,
            d.concurrent->barrier_dual_writes);
  EXPECT_EQ(c.concurrent->longest_pause, d.concurrent->longest_pause);
}

}  // namespace
}  // namespace hwgc
