// Unit tests for the Synchronization Block (paper Section V-C): the
// scan/free locks with their one-acquisition-per-cycle budget and
// same-cycle hand-off, the header-lock CAM, the ScanState busy bits, the
// barrier and the lock-order auditor.
#include <gtest/gtest.h>

#include "core/sync_block.hpp"

namespace hwgc {
namespace {

TEST(SyncBlock, ScanFreeRegisters) {
  SyncBlock sb(4);
  sb.set_scan(100);
  sb.set_free(100);
  EXPECT_TRUE(sb.worklist_empty());
  sb.set_free(120);
  EXPECT_FALSE(sb.worklist_empty());
  EXPECT_EQ(sb.scan(), 100u);
  EXPECT_EQ(sb.free(), 120u);
}

TEST(SyncBlock, ScanLockMutualExclusion) {
  SyncBlock sb(4);
  sb.begin_cycle();
  EXPECT_TRUE(sb.try_lock_scan(0));
  EXPECT_FALSE(sb.try_lock_scan(1));
  EXPECT_TRUE(sb.try_lock_scan(0)) << "owner re-testing must not deadlock";
  // Same-cycle hand-off after a multi-cycle hold: core 0 has held the lock
  // since the previous cycle; core 1 may acquire in the cycle core 0
  // releases (the acquisition budget of this new cycle is unspent).
  sb.begin_cycle();
  sb.unlock_scan(0);
  EXPECT_TRUE(sb.try_lock_scan(1));
  sb.unlock_scan(1);
}

TEST(SyncBlock, OneAcquisitionPerCyclePerLock) {
  SyncBlock sb(4);
  sb.begin_cycle();
  EXPECT_TRUE(sb.try_lock_scan(0));
  sb.unlock_scan(0);
  // Core 0's acquire-and-release consumed this cycle's budget ("at most
  // one core may modify each of these two registers during a clock
  // cycle").
  EXPECT_FALSE(sb.try_lock_scan(1));
  sb.begin_cycle();
  EXPECT_TRUE(sb.try_lock_scan(1));
  sb.unlock_scan(1);

  // The two pointer locks have independent budgets.
  sb.begin_cycle();
  EXPECT_TRUE(sb.try_lock_scan(2));
  EXPECT_TRUE(sb.try_lock_free(3));
  sb.unlock_scan(2);
  sb.unlock_free(3);
}

TEST(SyncBlock, HeaderLockCam) {
  SyncBlock sb(4);
  EXPECT_TRUE(sb.try_lock_header(0, 0x500));
  EXPECT_FALSE(sb.try_lock_header(1, 0x500)) << "CAM match must stall";
  EXPECT_TRUE(sb.try_lock_header(1, 0x600)) << "different address is free";
  EXPECT_TRUE(sb.try_lock_header(2, 0x700));
  sb.unlock_header(0);
  EXPECT_TRUE(sb.try_lock_header(3, 0x500)) << "released address is free";
  sb.unlock_header(1);
  sb.unlock_header(2);
  sb.unlock_header(3);
}

TEST(SyncBlock, HeaderLocksHaveNoPerCycleBudget) {
  // Each core owns its register; only CAM conflicts stall (Section V-C).
  SyncBlock sb(8);
  sb.begin_cycle();
  for (CoreId c = 0; c < 8; ++c) {
    EXPECT_TRUE(sb.try_lock_header(c, 0x1000 + 4 * c));
  }
  for (CoreId c = 0; c < 8; ++c) sb.unlock_header(c);
}

TEST(SyncBlock, BusyBitsAndTermination) {
  SyncBlock sb(3);
  EXPECT_TRUE(sb.all_idle());
  sb.set_busy(1, true);
  EXPECT_FALSE(sb.all_idle());
  EXPECT_TRUE(sb.busy(1));
  sb.set_busy(1, false);
  EXPECT_TRUE(sb.all_idle());
}

TEST(SyncBlock, BarrierReleasesWhenAllArrive) {
  SyncBlock sb(3);
  const auto gen = sb.barrier_generation();
  sb.barrier_arrive(0);
  sb.barrier_arrive(0);  // idempotent within a generation
  EXPECT_EQ(sb.barrier_generation(), gen);
  sb.barrier_arrive(2);
  EXPECT_EQ(sb.barrier_generation(), gen);
  sb.barrier_arrive(1);
  EXPECT_EQ(sb.barrier_generation(), gen + 1);
  // Next generation works the same way.
  sb.barrier_arrive(1);
  sb.barrier_arrive(0);
  EXPECT_EQ(sb.barrier_generation(), gen + 1);
  sb.barrier_arrive(2);
  EXPECT_EQ(sb.barrier_generation(), gen + 2);
}

TEST(SyncBlock, LockOrderAuditorFlagsViolations) {
  SyncBlock sb(2);
  sb.begin_cycle();
  // Legal order: scan -> header -> free.
  EXPECT_TRUE(sb.try_lock_scan(0));
  EXPECT_TRUE(sb.try_lock_header(0, 0x100));
  EXPECT_TRUE(sb.try_lock_free(0));
  EXPECT_TRUE(sb.violations().empty());
  sb.unlock_free(0);
  sb.unlock_header(0);
  sb.unlock_scan(0);

  // Violation: header while holding free.
  sb.begin_cycle();
  EXPECT_TRUE(sb.try_lock_free(1));
  EXPECT_TRUE(sb.try_lock_header(1, 0x200));
  EXPECT_EQ(sb.violations().size(), 1u);
  sb.unlock_header(1);
  sb.unlock_free(1);

  // Violation: scan while holding header.
  sb.begin_cycle();
  EXPECT_TRUE(sb.try_lock_header(0, 0x300));
  EXPECT_TRUE(sb.try_lock_scan(0));
  EXPECT_EQ(sb.violations().size(), 2u);
  sb.unlock_scan(0);
  sb.unlock_header(0);
}

}  // namespace
}  // namespace hwgc
