// TelemetryBus, Chrome-trace export and the golden-file stability
// guarantees: the bus must observe without perturbing the simulated
// timing, and the export formats must stay byte-stable so checked-in
// golden files and downstream tooling never silently drift.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "core/coprocessor.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry_bus.hpp"
#include "telemetry/trace_export.hpp"
#include "workloads/benchmarks.hpp"

namespace hwgc {
namespace {

TEST(TelemetryBus, DisabledBusRecordsNothing) {
  TelemetryBus bus;
  bus.begin_collection("x");
  bus.begin_cycle(0);
  bus.core_cycle(0, CoreActivity::kBusy);
  bus.phase(GcPhase::kRootEvacuation);
  bus.lock_acquired(SbLock::kScan, 0);
  bus.counter_sample(bus.counter_series("c"), 1);
  bus.end_collection(1);
  EXPECT_TRUE(bus.spans().empty());
  EXPECT_TRUE(bus.instants().empty());
  EXPECT_TRUE(bus.counters().empty());
}

TEST(TelemetryBus, CoalescesConsecutiveCoreCycles) {
  TelemetryBus bus;
  bus.enable();
  bus.begin_collection("coalesce");
  for (Cycle t = 0; t < 5; ++t) {
    bus.begin_cycle(t);
    bus.core_cycle(0, CoreActivity::kBusy);
  }
  bus.begin_cycle(5);
  bus.core_cycle(0, CoreActivity::kStall, StallReason::kScanLock);
  bus.end_collection(6);
  ASSERT_EQ(bus.spans().size(), 2u);
  EXPECT_EQ(bus.spans()[0].name, "busy");
  EXPECT_EQ(bus.spans()[0].begin, 0u);
  EXPECT_EQ(bus.spans()[0].end, 5u);
  EXPECT_EQ(bus.spans()[1].name, "stall:scan-lock");
  EXPECT_EQ(bus.spans()[1].begin, 5u);
  EXPECT_EQ(bus.spans()[1].end, 6u);
}

TEST(TelemetryBus, LockSpanNamesTheOwner) {
  TelemetryBus bus;
  bus.enable();
  bus.begin_collection("locks");
  bus.begin_cycle(2);
  bus.lock_acquired(SbLock::kFree, 3);
  bus.begin_cycle(4);
  bus.lock_released(SbLock::kFree, 3);
  bus.end_collection(5);
  const std::uint32_t free_track = bus.track("free-lock");
  bool found = false;
  for (const auto& s : bus.spans()) {
    if (s.track != free_track) continue;
    found = true;
    EXPECT_EQ(s.name, "held by core 3");
    EXPECT_EQ(s.begin, 2u);
    EXPECT_EQ(s.cat, TelemetryCategory::kLock);
  }
  EXPECT_TRUE(found);
}

TEST(TelemetryBus, EpochsConcatenateOntoOneTimeline) {
  Workload w1 = make_benchmark(BenchmarkId::kJlisp, 0.02);
  Workload w2 = make_benchmark(BenchmarkId::kJlisp, 0.02);
  SimConfig cfg;
  cfg.coprocessor.num_cores = 2;
  TelemetryBus bus;
  Coprocessor(cfg, *w1.heap).collect(nullptr, nullptr, nullptr, &bus);
  Coprocessor(cfg, *w2.heap).collect(nullptr, nullptr, nullptr, &bus);
  ASSERT_EQ(bus.epochs().size(), 2u);
  EXPECT_GT(bus.epochs()[0].end, bus.epochs()[0].begin);
  EXPECT_GE(bus.epochs()[1].begin, bus.epochs()[0].end);
  // No span may leak across its epoch's end.
  for (const auto& s : bus.spans()) {
    const bool in0 =
        s.begin >= bus.epochs()[0].begin && s.end <= bus.epochs()[0].end;
    const bool in1 =
        s.begin >= bus.epochs()[1].begin && s.end <= bus.epochs()[1].end;
    EXPECT_TRUE(in0 || in1) << s.name << " [" << s.begin << "," << s.end << ")";
  }
}

TEST(TelemetryBus, CollectionPublishesPhasesLocksAndAllCoreTracks) {
  Workload w = make_benchmark(BenchmarkId::kJlisp, 0.02);
  SimConfig cfg;
  cfg.coprocessor.num_cores = 4;
  TelemetryBus bus;
  Coprocessor coproc(cfg, *w.heap);
  coproc.collect(nullptr, nullptr, nullptr, &bus);

  const auto& names = bus.track_names();
  ASSERT_GE(names.size(), 7u);  // coprocessor + 4 cores + 2 locks
  EXPECT_EQ(names[0], "coprocessor");
  for (CoreId c = 0; c < 4; ++c) {
    EXPECT_EQ(names[1 + c], "core " + std::to_string(c));
  }

  std::vector<std::string> phases;
  bool saw_stall_span = false;
  for (const auto& s : bus.spans()) {
    if (s.cat == TelemetryCategory::kPhase) phases.push_back(s.name);
    if (s.name.rfind("stall:", 0) == 0) saw_stall_span = true;
  }
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0], "root-evacuation");
  EXPECT_EQ(phases[1], "parallel-scan");
  EXPECT_EQ(phases[2], "drain");
  EXPECT_TRUE(saw_stall_span);

  bool saw_flip = false;
  for (const auto& i : bus.instants()) {
    if (i.name == "flip") saw_flip = true;
  }
  EXPECT_TRUE(saw_flip);
}

// The acceptance contract of the whole layer: attaching the bus must not
// change simulated timing by a single clock cycle.
TEST(Telemetry, ObservationDoesNotChangeTiming) {
  for (const BenchmarkId id : {BenchmarkId::kDb, BenchmarkId::kJavacc}) {
    Workload w1 = make_benchmark(id, 0.02);
    Workload w2 = make_benchmark(id, 0.02);
    SimConfig cfg;
    cfg.coprocessor.num_cores = 8;
    Coprocessor c1(cfg, *w1.heap);
    Coprocessor c2(cfg, *w2.heap);
    TelemetryBus bus;
    const GcCycleStats with =
        c1.collect(nullptr, nullptr, nullptr, &bus);
    const GcCycleStats without = c2.collect();
    EXPECT_EQ(with.total_cycles, without.total_cycles)
        << "telemetry must be non-intrusive (" << benchmark_name(id) << ")";
    EXPECT_EQ(with.objects_copied, without.objects_copied);
    EXPECT_FALSE(bus.spans().empty());
  }
}

// Pinned pre-telemetry cycle counts: the observability layer landed with
// these exact numbers unchanged, and they must stay unchanged. If a
// *deliberate* timing change moves them, update the constants in the same
// commit.
TEST(Telemetry, PinnedBaselineCycleCountsUnchanged) {
  {
    Workload w = make_benchmark(BenchmarkId::kDb, 0.05);
    SimConfig cfg;
    cfg.coprocessor.num_cores = 8;
    Coprocessor coproc(cfg, *w.heap);
    EXPECT_EQ(coproc.collect().total_cycles, 47264u);
  }
  {
    Workload w = make_benchmark(BenchmarkId::kJlisp, 0.02);
    SimConfig cfg;
    cfg.coprocessor.num_cores = 4;
    Coprocessor coproc(cfg, *w.heap);
    EXPECT_EQ(coproc.collect().total_cycles, 2034u);
  }
}

TEST(ChromeTrace, ExportIsByteStableAcrossIdenticalRuns) {
  const auto run = [] {
    Workload w = make_benchmark(BenchmarkId::kJlisp, 0.02);
    SimConfig cfg;
    cfg.coprocessor.num_cores = 4;
    TelemetryBus bus;
    Coprocessor(cfg, *w.heap).collect(nullptr, nullptr, nullptr, &bus);
    return chrome_trace_json(bus);
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_GT(a.size(), 1000u);
  EXPECT_EQ(a, b);
}

// --- golden files ----------------------------------------------------------
//
// Regenerate with:  HWGC_REGEN_GOLDEN=1 ./test_telemetry
// then commit the changed files under tests/golden/ — a diff there is a
// deliberate format change, reviewed like any other interface change.

std::string golden_path(const std::string& name) {
  return std::string(HWGC_GOLDEN_DIR) + "/" + name;
}

void expect_matches_golden(const std::string& text, const std::string& name) {
  const std::string path = golden_path(name);
  if (std::getenv("HWGC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    out << text;
    ASSERT_TRUE(out) << "cannot regenerate " << path;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — regenerate with HWGC_REGEN_GOLDEN=1";
  const std::string want((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_EQ(text, want) << "export format drifted from " << path
                        << "; if intended, HWGC_REGEN_GOLDEN=1 and commit";
}

/// A tiny hand-built recording covering every event type the exporter
/// handles: phases, busy/stall spans, a lock hold, an instant, a counter.
TelemetryBus mini_bus() {
  TelemetryBus bus;
  bus.enable();
  bus.begin_collection("mini (1 core)");
  (void)bus.track("coprocessor");
  (void)bus.core_track(0);
  bus.begin_cycle(0);
  bus.phase(GcPhase::kRootEvacuation);
  bus.core_cycle(0, CoreActivity::kBusy);
  bus.begin_cycle(1);
  bus.phase(GcPhase::kParallelScan);
  bus.core_cycle(0, CoreActivity::kStall, StallReason::kScanLock);
  bus.lock_acquired(SbLock::kScan, 0);
  bus.counter_sample(bus.counter_series("gray_words"), 7);
  bus.begin_cycle(2);
  bus.lock_released(SbLock::kScan, 0);
  bus.core_cycle(0, CoreActivity::kBusy);
  bus.instant(bus.track("coprocessor"), TelemetryCategory::kFault,
              "example fault");
  bus.begin_cycle(3);
  bus.phase(GcPhase::kDrain);
  bus.core_cycle(0, CoreActivity::kIdle);
  bus.end_collection(4);
  return bus;
}

TEST(ChromeTrace, MatchesGoldenFile) {
  expect_matches_golden(chrome_trace_json(mini_bus()), "mini.trace.json");
}

GcCycleStats mini_stats(Cycle total) {
  GcCycleStats s;
  s.total_cycles = total;
  s.worklist_empty_cycles = total / 10;
  s.objects_copied = 12;
  s.words_copied = 48;
  s.pointers_forwarded = 20;
  s.mem_requests = 99;
  s.fifo_hits = 10;
  s.fifo_misses = 2;
  s.drain_cycles = 3;
  s.per_core.resize(2);
  s.per_core[0].busy_cycles = total / 2;
  s.per_core[0].stalls[static_cast<std::size_t>(StallReason::kScanLock)] = 5;
  s.per_core[1].busy_cycles = total / 3;
  s.per_core[1].stalls[static_cast<std::size_t>(StallReason::kBodyLoad)] = 9;
  return s;
}

TEST(MetricsJsonl, MatchesGoldenFileAndValidates) {
  MetricsRegistry reg;
  SimConfig cfg;
  cfg.coprocessor.num_cores = 2;
  MetricsRegistry::Key key{"mini", 2, 0.25, 7};
  reg.record(key, cfg, mini_stats(100));
  reg.record(key, cfg, mini_stats(120));
  reg.record(key, cfg, mini_stats(110));
  SimConfig seq = cfg;
  seq.coprocessor.num_cores = 1;
  MetricsRegistry::Key base{"mini", 1, 0.25, 7};
  reg.record(base, seq, mini_stats(200));
  const std::string jsonl = reg.to_jsonl("golden");

  std::istringstream lines(jsonl);
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    std::string err;
    EXPECT_TRUE(validate_bench_jsonl_line(line, &err)) << err << "\n" << line;
    ++n;
  }
  EXPECT_EQ(n, 2u);
  expect_matches_golden(jsonl, "bench_mini.json");
}

TEST(MetricsJsonl, EmittedRecordsFromRealRunsValidate) {
  MetricsRegistry reg;
  Workload w = make_benchmark(BenchmarkId::kJlisp, 0.02);
  SimConfig cfg;
  cfg.coprocessor.num_cores = 4;
  Coprocessor coproc(cfg, *w.heap);
  const GcCycleStats s = coproc.collect();
  reg.record({"jlisp", 4, 0.02, 42}, cfg, s);
  std::string err;
  const std::string jsonl = reg.to_jsonl("real");
  const std::string line = jsonl.substr(0, jsonl.find('\n'));
  EXPECT_TRUE(validate_bench_jsonl_line(line, &err)) << err;
}

TEST(MetricsJsonl, ValidatorRejectsMalformedLines) {
  std::string err;
  EXPECT_FALSE(validate_bench_jsonl_line("not json at all", &err));
  EXPECT_FALSE(validate_bench_jsonl_line("{\"schema\":\"hwgc-bench-v1\"}",
                                         &err));
  EXPECT_NE(err.find("missing field"), std::string::npos);

  // Build one valid line, then corrupt it in targeted ways.
  MetricsRegistry reg;
  SimConfig cfg;
  cfg.coprocessor.num_cores = 2;
  reg.record({"x", 2, 0.1, 1}, cfg, mini_stats(100));
  std::string line = reg.to_jsonl("s");
  line.pop_back();  // trailing newline
  ASSERT_TRUE(validate_bench_jsonl_line(line, &err)) << err;

  const auto corrupt = [&](const std::string& from, const std::string& to) {
    std::string c = line;
    const auto pos = c.find(from);
    ASSERT_NE(pos, std::string::npos) << from;
    c.replace(pos, from.size(), to);
    EXPECT_FALSE(validate_bench_jsonl_line(c, &err)) << c;
  };
  corrupt("\"schema\":\"hwgc-bench-v1\"", "\"schema\":\"hwgc-bench-v2\"");
  corrupt("\"cores\":2", "\"cores\":0");
  corrupt("\"cycles_min\":100", "\"cycles_min\":500");       // > p50
  corrupt("\"worklist_empty_fraction\":0.1", "\"worklist_empty_fraction\":1.5");
  corrupt("\"samples\":1", "\"samples\":\"one\"");           // wrong type
}

TEST(MetricsJsonl, FileValidatorReportsPerLine) {
  const std::string path = ::testing::TempDir() + "/hwgc_bench_invalid.json";
  {
    MetricsRegistry reg;
    SimConfig cfg;
    cfg.coprocessor.num_cores = 2;
    reg.record({"x", 2, 0.1, 1}, cfg, mini_stats(100));
    std::ofstream out(path);
    out << reg.to_jsonl("s") << "{\"schema\":\"bogus\"}\n";
  }
  std::vector<std::string> errors;
  EXPECT_FALSE(validate_bench_jsonl_file(path, &errors));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find(":2:"), std::string::npos);
  std::remove(path.c_str());

  errors.clear();
  EXPECT_FALSE(validate_bench_jsonl_file(path, &errors));  // now unreadable
  EXPECT_FALSE(errors.empty());
}

}  // namespace
}  // namespace hwgc
