// Concurrency torture sweep for the threaded baselines: thread counts up
// to heavy oversubscription, with the TortureAgitator injecting a
// barrier-synchronized start (all workers released into the racy first
// evacuations together), seeded start stagger and yield chaos. Carries the
// tsan-smoke ctest label: under -DHWGC_SANITIZE=thread this file is the
// designated race hunt.
#include <gtest/gtest.h>

#include <sstream>

#include "conformance/conformance.hpp"
#include "conformance/harness.hpp"
#include "workloads/random_graph.hpp"

namespace hwgc {
namespace {

struct TortureParam {
  CollectorId id;
  std::uint64_t seed;
  std::uint32_t threads;
};

std::string torture_name(const ::testing::TestParamInfo<TortureParam>& info) {
  std::ostringstream os;
  os << to_string(info.param.id) << "_s" << info.param.seed << "_t"
     << info.param.threads;
  return os.str();
}

class TortureSweep : public ::testing::TestWithParam<TortureParam> {};

TEST_P(TortureSweep, PerturbedScheduleStillConforms) {
  const TortureParam p = GetParam();
  RandomGraphConfig g;
  g.nodes = 64;  // small graphs maximize the racy fraction of the cycle
  ConformanceCase c;
  c.plan = make_random_plan(p.seed, g);
  c.harness.threads = p.threads;
  c.harness.torture.seed = p.seed * 2654435761u + p.threads;
  c.harness.torture.yield_period = 3;  // aggressive preemption chaos
  const ConformanceVerdict v = run_conformance_case(p.id, c);
  EXPECT_TRUE(v.ok) << v.summary();
}

std::vector<TortureParam> torture_params() {
  std::vector<TortureParam> params;
  const CollectorId kThreaded[] = {CollectorId::kNaive, CollectorId::kChunked,
                                   CollectorId::kPackets,
                                   CollectorId::kStealing};
  // 16 threads is heavy oversubscription on any CI host — every wait in
  // the collectors must tolerate a worker losing its timeslice anywhere.
  constexpr std::uint32_t kThreads[] = {2, 4, 16};
  constexpr std::uint64_t kSeeds[] = {101, 202};
  for (CollectorId id : kThreaded) {
    for (std::uint32_t t : kThreads) {
      for (std::uint64_t s : kSeeds) params.push_back({id, s, t});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(ThreadedBaselines, TortureSweep,
                         ::testing::ValuesIn(torture_params()), torture_name);

TEST(Torture, AgitatorOffIsANoOp) {
  // seed == 0 disables every perturbation: identical results to a config
  // that never mentions torture (the knob must be safe to leave default).
  RandomGraphConfig g;
  g.nodes = 50;
  const GraphPlan plan = make_random_plan(7, g);
  HarnessConfig with, without;
  with.threads = without.threads = 1;
  with.torture.seed = 0;
  Workload a = materialize(plan, 2.0);
  Workload b = materialize(plan, 2.0);
  const CycleReport ra = make_harness(CollectorId::kPackets, with)->collect(*a.heap);
  const CycleReport rb =
      make_harness(CollectorId::kPackets, without)->collect(*b.heap);
  ASSERT_TRUE(ra.parallel && rb.parallel);
  EXPECT_EQ(ra.parallel->cas_ops, rb.parallel->cas_ops);
  EXPECT_EQ(ra.parallel->mutex_acquisitions, rb.parallel->mutex_acquisitions);
  EXPECT_EQ(ra.objects_copied, rb.objects_copied);
}

}  // namespace
}  // namespace hwgc
