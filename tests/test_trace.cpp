// Signal tracing (the FPGA monitoring framework's software twin) and its
// integration with the coprocessor.
#include <gtest/gtest.h>

#include <cstdio>
#include <vector>
#include <fstream>

#include "core/coprocessor.hpp"
#include "sim/trace.hpp"
#include "workloads/benchmarks.hpp"

namespace hwgc {
namespace {

TEST(SignalTrace, DisabledTraceRecordsNothing) {
  SignalTrace trace;
  const auto sig = trace.register_signal("x");
  trace.sample(1, sig, 42);
  EXPECT_TRUE(trace.events().empty());
}

TEST(SignalTrace, RecordsInOrderWhenEnabled) {
  SignalTrace trace;
  const auto a = trace.register_signal("a");
  const auto b = trace.register_signal("b");
  trace.enable();
  trace.sample(5, a, 1);
  trace.sample(6, b, 2);
  trace.sample(9, a, 3);
  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.events()[0].cycle, 5u);
  EXPECT_EQ(trace.events()[2].value, 3u);
  EXPECT_EQ(trace.signal_names()[b], "b");
}

TEST(SignalTrace, BoundedRingDropsOldest) {
  SignalTrace trace;
  const auto sig = trace.register_signal("s");
  trace.enable(/*max_events=*/4);
  for (Cycle t = 0; t < 10; ++t) trace.sample(t, sig, t);
  ASSERT_EQ(trace.events().size(), 4u);
  EXPECT_EQ(trace.events().front().cycle, 6u);
  EXPECT_EQ(trace.events().back().cycle, 9u);
}

TEST(SignalTrace, WritesCsv) {
  SignalTrace trace;
  const auto sig = trace.register_signal("scan");
  trace.enable();
  trace.sample(1, sig, 100);
  trace.sample(2, sig, 105);
  const std::string path = ::testing::TempDir() + "/hwgc_trace_test.csv";
  ASSERT_TRUE(trace.write_csv(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "cycle,signal,value,note");
  std::getline(in, line);
  EXPECT_EQ(line, "1,scan,100,");
  std::remove(path.c_str());
}

TEST(SignalTrace, CsvMergesNotesByCycleAndQuotes) {
  SignalTrace trace;
  const auto sig = trace.register_signal("scan");
  trace.enable();
  trace.sample(1, sig, 100);
  trace.note(1, "fault, \"hard\"");
  trace.note(3, "abort");
  trace.sample(5, sig, 105);
  const std::string path = ::testing::TempDir() + "/hwgc_trace_notes.csv";
  ASSERT_TRUE(trace.write_csv(path));
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines[0], "cycle,signal,value,note");
  EXPECT_EQ(lines[1], "1,scan,100,");
  EXPECT_EQ(lines[2], "1,note,,\"fault, \"\"hard\"\"\"");
  EXPECT_EQ(lines[3], "3,note,,\"abort\"");
  EXPECT_EQ(lines[4], "5,scan,105,");
  std::remove(path.c_str());
}

TEST(SignalTrace, VcdEmitsNotesAsComments) {
  SignalTrace trace;
  const auto sig = trace.register_signal("scan");
  trace.enable();
  trace.sample(3, sig, 1);
  trace.note(3, "injected $end of story");
  trace.note(10, "after the last sample");
  const std::string path = ::testing::TempDir() + "/hwgc_trace_notes.vcd";
  ASSERT_TRUE(trace.write_vcd(path));
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  // The embedded "$end" must be broken so it cannot close the comment.
  EXPECT_NE(all.find("$comment injected $ end of story $end"),
            std::string::npos);
  // A note past the final sample still appears, under its own timestamp.
  EXPECT_NE(all.find("#10\n$comment after the last sample $end"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(SignalTrace, WritesVcd) {
  SignalTrace trace;
  const auto scan = trace.register_signal("scan");
  const auto busy = trace.register_signal("busy");
  trace.enable();
  trace.sample(3, scan, 0x10);
  trace.sample(3, busy, 1);
  trace.sample(7, scan, 0x18);
  const std::string path = ::testing::TempDir() + "/hwgc_trace_test.vcd";
  ASSERT_TRUE(trace.write_vcd(path));
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("$var wire 64 ! scan $end"), std::string::npos);
  EXPECT_NE(all.find("$var wire 64 \" busy $end"), std::string::npos);
  EXPECT_NE(all.find("#3\n"), std::string::npos);
  EXPECT_NE(all.find("#7\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SignalTrace, CoprocessorEmitsScanFreeAndBusySignals) {
  Workload w = make_benchmark(BenchmarkId::kJlisp, 0.02);
  SimConfig cfg;
  cfg.coprocessor.num_cores = 4;
  Coprocessor coproc(cfg, *w.heap);
  SignalTrace trace;
  const GcCycleStats s = coproc.collect(&trace);
  EXPECT_GT(trace.events().size(), 10u);
  // scan and free must both end at the same final value: base + copied.
  std::uint64_t last_scan = 0, last_free = 0;
  for (const auto& e : trace.events()) {
    if (trace.signal_names()[e.signal] == "scan") last_scan = e.value;
    if (trace.signal_names()[e.signal] == "free") last_free = e.value;
  }
  EXPECT_EQ(last_scan, last_free);
  EXPECT_EQ(last_free - w.heap->layout().current_base(), s.words_copied);
}

TEST(SignalTrace, TracingDoesNotChangeTiming) {
  Workload w1 = make_benchmark(BenchmarkId::kJavacc, 0.02);
  Workload w2 = make_benchmark(BenchmarkId::kJavacc, 0.02);
  SimConfig cfg;
  cfg.coprocessor.num_cores = 8;
  Coprocessor c1(cfg, *w1.heap);
  Coprocessor c2(cfg, *w2.heap);
  SignalTrace trace;
  const Cycle with = c1.collect(&trace).total_cycles;
  const Cycle without = c2.collect().total_cycles;
  EXPECT_EQ(with, without) << "the monitor must be non-intrusive";
}

}  // namespace
}  // namespace hwgc
