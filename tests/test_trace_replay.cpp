// Trace capture & replay (src/trace/, DESIGN.md §16).
//
// The contract under test, in four layers:
//   1. Differential replay matrix: every committed corpus trace replays
//      under every collector in the inventory x 2 schedule seeds with the conformance
//      post-structure oracle checked on every cycle, and every collector
//      reproduces the sequential Cheney reference's live-graph digest.
//   2. Round-trip identity: record -> replay -> re-record is byte-identical
//      (JSONL and binary), and the replay's per-cycle GcCycleStats and
//      SignalTrace streams are bit-identical to the recording run's.
//   3. Loader robustness: truncation, digest mismatch, unknown event kind,
//      out-of-range ids and version skew each fail with a message-specific
//      TraceError before any Runtime is constructed.
//   4. The service bridge: trace-per-session heapd runs are byte-identical
//      between the serial conductor and the shard pool, and the config
//      validation rejects the resilience/trace combination.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "heap/object_model.hpp"
#include "service/heap_service.hpp"
#include "service/service_metrics.hpp"
#include "sim/trace.hpp"
#include "trace/corpus.hpp"
#include "trace/recorder.hpp"
#include "trace/replayer.hpp"
#include "workloads/mutator.hpp"

namespace hwgc {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& e : std::filesystem::directory_iterator(HWGC_TRACE_DIR)) {
    if (e.is_regular_file()) files.push_back(e.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool counters_equal(const CoreCounters& a, const CoreCounters& b) {
  return a.stalls == b.stalls && a.busy_cycles == b.busy_cycles &&
         a.idle_cycles == b.idle_cycles &&
         a.objects_scanned == b.objects_scanned &&
         a.objects_evacuated == b.objects_evacuated &&
         a.pointers_processed == b.pointers_processed &&
         a.fifo_hits == b.fifo_hits && a.fifo_misses == b.fifo_misses;
}

bool stats_equal(const GcCycleStats& a, const GcCycleStats& b) {
  if (a.total_cycles != b.total_cycles ||
      a.worklist_empty_cycles != b.worklist_empty_cycles ||
      a.objects_copied != b.objects_copied ||
      a.words_copied != b.words_copied ||
      a.pointers_forwarded != b.pointers_forwarded ||
      a.fifo_overflows != b.fifo_overflows ||
      a.mem_requests != b.mem_requests || a.fifo_hits != b.fifo_hits ||
      a.fifo_misses != b.fifo_misses || a.drain_cycles != b.drain_cycles ||
      a.restart_stores_drained != b.restart_stores_drained ||
      a.faults_fired != b.faults_fired ||
      a.lock_order_violations != b.lock_order_violations ||
      a.per_core.size() != b.per_core.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.per_core.size(); ++i) {
    if (!counters_equal(a.per_core[i], b.per_core[i])) return false;
  }
  return true;
}

/// Records shadow-mutator churn while keeping the recording runtime's
/// observable streams (GC stats, signal samples) for bit-identity checks.
struct RecordedSession {
  Trace trace;
  std::vector<GcCycleStats> gc_history;
  SignalTrace signals;
};

RecordedSession record_churn_session(std::uint64_t seed) {
  RecordedSession out;
  TraceHeader header;
  header.name = "churn";
  header.semispace_words = 2048;
  header.cores = 4;

  Runtime rt(header.semispace_words, header.sim_config());
  out.signals.enable();
  rt.set_signal_trace(&out.signals);
  TraceRecorder recorder(header);
  recorder.attach(rt);

  ShadowMutator::Config mc;
  mc.seed = seed;
  mc.target_live = 48;
  ShadowMutator mut(mc);
  for (int p = 0; p < 4; ++p) {
    mut.run(rt, 150);
    for (int k = 0; k < 4; ++k) mut.probe(rt);
    rt.collect();
  }

  recorder.detach(rt);
  out.trace = recorder.take();
  out.gc_history = rt.gc_history();
  return out;
}

// --- 1. Differential replay matrix --------------------------------------

TEST(TraceReplayMatrix, CorpusAllCollectorsTwoSeedsMatchSequential) {
  const std::vector<std::string> files = corpus_files();
  ASSERT_GE(files.size(), 13u) << "committed corpus missing from "
                               << HWGC_TRACE_DIR;
  constexpr std::uint64_t kSeeds[] = {1, 0x5eed};
  for (const std::string& file : files) {
    const Trace trace = load_trace(file);

    // The chunk/LAB collectors' wasted to-space depends on host-thread
    // interleaving, so a tightly recorded semispace can exhaust on some
    // runs and not others. The matrix compares end-state structure (which
    // does not depend on where implicit cycles land), so give every run —
    // reference included — uniform 2x headroom; boundary exactness is
    // covered by the round-trip tests at the recorded size.
    const Word matrix_semispace = 2 * trace.header.semispace_words;

    // Sequential Cheney is the reference every collector must agree with.
    ReplayConfig ref_cfg;
    ref_cfg.collector = CollectorId::kSequential;
    ref_cfg.semispace_words = matrix_semispace;
    const ReplayResult ref = replay_trace(trace, ref_cfg);
    ASSERT_TRUE(ref.ok) << file << " [sequential]: " << ref.summary()
                        << (ref.findings.empty() ? "" : "\n  " +
                            ref.findings.front());
    EXPECT_GT(ref.collections, 0u) << file << ": trace never collected";

    for (CollectorId id : all_collectors()) {
      for (std::uint64_t seed : kSeeds) {
        ReplayConfig cfg;
        cfg.collector = id;
        cfg.schedule_seed = seed;
        cfg.semispace_words = matrix_semispace;
        const ReplayResult r = replay_trace(trace, cfg);
        const std::string label = file + " [" + std::string(to_string(id)) +
                                  " seed=" + std::to_string(seed) + "]";
        EXPECT_TRUE(r.ok) << label << ": " << r.summary()
                          << (r.findings.empty() ? "" : "\n  " +
                              r.findings.front());
        EXPECT_EQ(r.read_mismatches, 0u) << label;
        EXPECT_EQ(r.ops_applied, trace.ops.size()) << label;
        EXPECT_EQ(r.live_ids, ref.live_ids) << label;
        EXPECT_EQ(r.live_graph_digest, ref.live_graph_digest)
            << label << " diverges from the sequential reference";
      }
    }
  }
}

// --- 2. Round-trip identity ----------------------------------------------

TEST(TraceRoundTrip, RecordReplayRerecordIsByteIdentical) {
  const RecordedSession session = record_churn_session(123);

  ReplayConfig cfg;
  cfg.rerecord = true;
  const ReplayResult r = replay_trace(session.trace, cfg);
  ASSERT_TRUE(r.ok) << r.summary();

  // Structural equality, then the stronger byte-for-byte claim in both
  // serializations.
  EXPECT_TRUE(r.rerecorded == session.trace);
  EXPECT_EQ(trace_to_jsonl(r.rerecorded), trace_to_jsonl(session.trace));
  EXPECT_EQ(trace_to_binary(r.rerecorded), trace_to_binary(session.trace));
}

TEST(TraceRoundTrip, GcCycleStatsBitIdenticalToRecordingRun) {
  const RecordedSession session = record_churn_session(77);

  const ReplayResult r = replay_trace(session.trace);
  ASSERT_TRUE(r.ok) << r.summary();
  ASSERT_EQ(r.gc_history.size(), session.gc_history.size())
      << "replay ran a different number of collection cycles";
  for (std::size_t i = 0; i < r.gc_history.size(); ++i) {
    EXPECT_TRUE(stats_equal(r.gc_history[i], session.gc_history[i]))
        << "cycle " << i << " stats diverge from the recording run";
  }
}

TEST(TraceRoundTrip, SignalTraceBitIdenticalToRecordingRun) {
  const RecordedSession session = record_churn_session(9);
  ASSERT_FALSE(session.signals.events().empty());

  SignalTrace replay_signals;
  replay_signals.enable();
  ReplayConfig cfg;
  cfg.signal_trace = &replay_signals;
  const ReplayResult r = replay_trace(session.trace, cfg);
  ASSERT_TRUE(r.ok) << r.summary();

  const auto& a = session.signals.events();
  const auto& b = replay_signals.events();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cycle, b[i].cycle) << "sample " << i;
    EXPECT_EQ(a[i].signal, b[i].signal) << "sample " << i;
    EXPECT_EQ(a[i].value, b[i].value) << "sample " << i;
  }
  EXPECT_EQ(session.signals.signal_names(), replay_signals.signal_names());
}

TEST(TraceRoundTrip, ImplicitExhaustionCyclesReplayAtSameBoundaries) {
  // The lisp corpus trace runs explicit collects between statements AND
  // implicit exhaustion cycles mid-evaluation; the replay must re-trigger
  // the implicit ones at the same allocation boundaries.
  const Trace trace = trace_from_lisp();
  const ReplayResult a = replay_trace(trace);
  const ReplayResult b = replay_trace(trace);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_GT(a.collections, a.explicit_collects)
      << "expected implicit exhaustion cycles in the lisp trace";
  EXPECT_EQ(a.collections, b.collections);
  EXPECT_EQ(a.live_graph_digest, b.live_graph_digest);
}

// --- 3. Loader robustness ------------------------------------------------

/// A tiny, valid trace to corrupt: alloc/data/link/read/collect/release.
Trace tiny_trace() { return trace_from_benchmark(BenchmarkId::kJlisp); }

void expect_load_failure(const std::string& text,
                         const std::string& must_contain) {
  try {
    trace_from_jsonl(text);
    FAIL() << "expected TraceError containing \"" << must_contain << "\"";
  } catch (const TraceError& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.rfind("hwgc-trace-v1: ", 0), 0u)
        << "error lacks the schema prefix: " << what;
    EXPECT_NE(what.find(must_contain), std::string::npos)
        << "error \"" << what << "\" does not mention \"" << must_contain
        << "\"";
  }
}

TEST(TraceLoader, TruncatedStreamFails) {
  std::string text = trace_to_jsonl(tiny_trace());
  // Drop the final op line (keep the trailing newline shape intact).
  text.pop_back();  // '\n'
  text.erase(text.rfind('\n') + 1);
  expect_load_failure(text, "truncated stream");
}

TEST(TraceLoader, MissingHeaderFails) {
  expect_load_failure("", "truncated stream (no header line)");
}

TEST(TraceLoader, DigestMismatchFails) {
  Trace t = tiny_trace();
  ASSERT_FALSE(t.ops.empty());
  t.ops.back().c ^= 1;  // corrupt one operand; header keeps the old digest
  std::string text = trace_to_jsonl(t);
  const std::string honest = std::to_string(t.digest());
  const std::string recorded = std::to_string(tiny_trace().digest());
  const auto pos = text.find("\"digest\":" + honest);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos + 9, honest.size(), recorded);
  expect_load_failure(text, "stream digest mismatch");
}

TEST(TraceLoader, UnknownEventKindFails) {
  std::string text = trace_to_jsonl(tiny_trace());
  const auto pos = text.find("\"k\":\"alloc\"");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 11, "\"k\":\"munge\"");
  expect_load_failure(text, "unknown event kind 'munge'");
}

TEST(TraceLoader, OutOfRangeObjectIdFails) {
  // Structural check_trace gate: a link to an id that was never allocated.
  Trace t = tiny_trace();
  for (TraceOp& op : t.ops) {
    if (op.kind == TraceOp::Kind::kLink && op.c != kNoTraceId) {
      op.c = 1u << 30;
      break;
    }
  }
  expect_load_failure(trace_to_jsonl(t), "out-of-range object id");
}

TEST(TraceLoader, OversizedShapeDoesNotCorruptValidation) {
  // Regression: an alloc whose pi exceeds the header encoding used to keep
  // the truncated pi while sizing the children mirror to zero, so a later
  // link/load through a nominally in-range field indexed out of bounds.
  Trace t;
  t.header.name = "badshape";
  TraceOp alloc;
  alloc.kind = TraceOp::Kind::kAlloc;
  alloc.a = 0;
  alloc.b = static_cast<std::uint64_t>(kMaxPi) + 1;
  alloc.c = 0;
  t.ops.push_back(alloc);
  TraceOp link;
  link.kind = TraceOp::Kind::kLink;
  link.a = 0;
  link.b = 0;
  link.c = kNoTraceId;
  t.ops.push_back(link);
  TraceOp load;
  load.kind = TraceOp::Kind::kLoad;
  load.a = 0;
  load.b = 0;
  load.c = 0;
  t.ops.push_back(load);
  expect_load_failure(trace_to_jsonl(t), "exceeds the header encoding");
}

TEST(TraceLoader, SemispaceWordsBeyondWordRangeFails) {
  std::string text = trace_to_jsonl(tiny_trace());
  const std::string field = "\"semispace_words\":";
  const auto pos = text.find(field);
  ASSERT_NE(pos, std::string::npos);
  const auto end = text.find(',', pos);
  text.replace(pos + field.size(), end - pos - field.size(), "4294967296");
  expect_load_failure(text, "semispace_words 4294967296 out of range");
}

TEST(TraceLoader, BinarySemispaceWordsBeyondWordRangeFails) {
  const Trace t = tiny_trace();
  std::string bin = trace_to_binary(t);
  // magic(8) + version(4) + name_len(4) + name, then semispace as u64 LE;
  // setting the fifth byte adds 2^32 to the declared semispace.
  const std::size_t off = 16 + t.header.name.size() + 4;
  ASSERT_LT(off, bin.size());
  bin[off] = 1;
  try {
    trace_from_binary(bin);
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("semispace_words"), std::string::npos) << what;
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
  }
}

TEST(TraceLoader, VersionSkewFails) {
  std::string text = trace_to_jsonl(tiny_trace());
  const auto pos = text.find("\"version\":1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 11, "\"version\":2");
  expect_load_failure(text, "unsupported hwgc-trace version 2");
}

TEST(TraceLoader, BinaryBadMagicFails) {
  std::string bin = trace_to_binary(tiny_trace());
  bin[0] ^= 0xff;
  try {
    trace_from_binary(bin);
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos);
  }
}

TEST(TraceLoader, JsonlBinaryRoundTripAgree) {
  const Trace t = tiny_trace();
  EXPECT_TRUE(trace_from_jsonl(trace_to_jsonl(t)) == t);
  EXPECT_TRUE(trace_from_binary(trace_to_binary(t)) == t);
}

// --- Fuzzer-to-trace bridge ----------------------------------------------

TEST(TraceFuzzBridge, EmittedTraceReproducesTheOracleVerdict) {
  const FuzzCase fc = case_from_seed(0xBEEF);
  const FuzzVerdict verdict = run_fuzz_case(fc);

  const Trace trace = trace_from_fuzz_case(fc);
  ReplayConfig cfg;
  cfg.collector = CollectorId::kCoprocessor;
  const ReplayResult r = replay_trace(trace, cfg);

  // The committed fuzz seeds pass the differential oracle; their traces
  // must replay clean under the same hardware knobs (carried in the
  // header), and bit-identically across repeated replays.
  EXPECT_EQ(verdict.ok, r.ok)
      << "replay verdict diverges from the fuzz oracle's";
  const ReplayResult again = replay_trace(trace, cfg);
  EXPECT_EQ(r.live_graph_digest, again.live_graph_digest);
  ASSERT_EQ(r.gc_history.size(), again.gc_history.size());
  for (std::size_t i = 0; i < r.gc_history.size(); ++i) {
    EXPECT_TRUE(stats_equal(r.gc_history[i], again.gc_history[i]))
        << "cycle " << i;
  }
}

// --- Read-event seam (ShadowMutator::probe through the facade) -----------

TEST(TraceReadSeam, ProbeEventsAreRecordedWithContentDigests) {
  const RecordedSession session = record_churn_session(5);
  std::size_t reads = 0;
  std::size_t with_content = 0;
  for (const TraceOp& op : session.trace.ops) {
    if (op.kind == TraceOp::Kind::kRead) {
      ++reads;
      if (op.b > 0) ++with_content;  // delta=0 objects probe zero words
      EXPECT_NE(op.c, 0u) << "probe digest missing";
    }
  }
  EXPECT_GE(reads, 8u) << "ShadowMutator::probe reads not visible to the "
                          "recorder seam";
  EXPECT_GE(with_content, 1u) << "no probe ever read data words";
}

TEST(TraceReadSeam, CorruptedReadDigestIsCaughtOnReplay) {
  RecordedSession session = record_churn_session(5);
  for (TraceOp& op : session.trace.ops) {
    if (op.kind == TraceOp::Kind::kRead) {
      op.c ^= 0xdead;
      break;
    }
  }
  const ReplayResult r = replay_trace(session.trace);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.read_mismatches, 1u);
}

// --- Size-scaling transform (tracectl transform --scale-sizes) -----------

TEST(TraceTransform, ScaleUpRoundTripsAndReplaysClean) {
  const RecordedSession session = record_churn_session(5);
  const Trace scaled = scale_trace_sizes(session.trace, 2.0);

  // Structure survives the rescale and the digest re-derivation.
  EXPECT_TRUE(check_trace(scaled).empty());
  EXPECT_EQ(scaled.objects(), session.trace.objects());
  EXPECT_EQ(scaled.header.semispace_words,
            session.trace.header.semispace_words * 2);
  EXPECT_NE(scaled.digest(), session.trace.digest());

  // Both serializations round-trip through the validating loaders.
  const std::string jsonl_path = ::testing::TempDir() + "scaled.jsonl";
  const std::string bin_path = ::testing::TempDir() + "scaled.bin";
  save_trace(jsonl_path, scaled);
  save_trace(bin_path, scaled, /*binary=*/true);
  EXPECT_TRUE(load_trace(jsonl_path) == scaled);
  EXPECT_TRUE(load_trace(bin_path) == scaled);
  std::remove(jsonl_path.c_str());
  std::remove(bin_path.c_str());

  // The re-derived read digests hold up under live replay.
  const ReplayResult r = replay_trace(scaled);
  EXPECT_TRUE(r.ok) << (r.findings.empty() ? "" : r.findings.front());
  EXPECT_EQ(r.read_mismatches, 0u)
      << "scale_trace_sizes must re-derive every kRead digest";
}

TEST(TraceTransform, ScaleOneIsTheIdentity) {
  const RecordedSession session = record_churn_session(9);
  const Trace scaled = scale_trace_sizes(session.trace, 1.0);
  EXPECT_TRUE(scaled == session.trace);
  EXPECT_EQ(scaled.digest(), session.trace.digest());
}

TEST(TraceTransform, ShrinkDropsOutOfRangeStoresAndRederivesDigests) {
  Trace t;
  t.header.name = "shrink";
  t.header.semispace_words = 256;
  t.ops = {
      {TraceOp::Kind::kAlloc, 0, 0, 8},
      {TraceOp::Kind::kData, 0, 6, 77},  // outside the shrunken data area
      {TraceOp::Kind::kData, 0, 1, 5},
      {TraceOp::Kind::kRead, 0, 8, 0xdead},  // digest re-derived below
      {TraceOp::Kind::kCollect, 0, 0, 0},
  };
  ASSERT_TRUE(check_trace(t).empty());

  const Trace scaled = scale_trace_sizes(t, 0.25);
  ASSERT_EQ(scaled.ops.size(), t.ops.size() - 1)
      << "the word-6 store must be dropped at delta 2";
  EXPECT_EQ(scaled.ops[0].c, 2u);  // delta 8 -> 2
  EXPECT_EQ(scaled.ops[2].kind, TraceOp::Kind::kRead);
  EXPECT_EQ(scaled.ops[2].b, 2u);
  EXPECT_TRUE(check_trace(scaled).empty());

  const ReplayResult r = replay_trace(scaled);
  EXPECT_TRUE(r.ok) << (r.findings.empty() ? "" : r.findings.front());
  EXPECT_EQ(r.read_mismatches, 0u);
}

TEST(TraceTransform, RejectsNonPositiveFactor) {
  const Trace t;
  EXPECT_THROW(scale_trace_sizes(t, 0.0), std::invalid_argument);
  EXPECT_THROW(scale_trace_sizes(t, -2.0), std::invalid_argument);
}

// --- Corpus regeneration identity ----------------------------------------

TEST(TraceCorpus, CommittedFilesMatchTheGeneratorsBitForBit) {
  const std::vector<Trace> fresh = build_corpus();
  std::map<std::string, const Trace*> by_name;
  for (const Trace& t : fresh) by_name[t.header.name] = &t;

  const std::vector<std::string> files = corpus_files();
  ASSERT_EQ(files.size(), fresh.size())
      << "committed corpus and build_corpus() disagree on size; rerun "
         "`tracectl corpus --dir traces`";
  for (const std::string& file : files) {
    const Trace committed = load_trace(file);
    auto it = by_name.find(committed.header.name);
    ASSERT_NE(it, by_name.end()) << file << " not produced by build_corpus()";
    EXPECT_TRUE(committed == *it->second)
        << file << " diverges from its generator; rerun "
        << "`tracectl corpus --dir traces`";
  }
}

// --- Service bridge: trace-per-session heapd -----------------------------

ServiceConfig trace_service_config(std::size_t host_threads) {
  ServiceConfig cfg;
  cfg.shards = 4;
  cfg.traffic.sessions = 16;
  cfg.traffic.seed = 11;
  auto traces = std::make_shared<std::vector<Trace>>();
  traces->push_back(trace_from_churn(7, 300));
  traces->push_back(trace_from_benchmark(BenchmarkId::kJlisp));
  cfg.traces = std::move(traces);
  cfg.host_threads = host_threads;
  return cfg;
}

TEST(TraceService, SerialAndShardPoolRunsAreByteIdentical) {
  HeapService serial(trace_service_config(1));
  serial.serve(3000);
  HeapService pooled(trace_service_config(4));
  pooled.serve(3000);

  EXPECT_EQ(service_report_jsonl(serial, "trace"),
            service_report_jsonl(pooled, "trace"));

  const SloStats a = serial.fleet_stats();
  const SloStats b = pooled.fleet_stats();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.collections, b.collections);
  EXPECT_GT(a.collections, 0u);
  EXPECT_EQ(a.oracle_failures, 0u);
  EXPECT_EQ(a.read_mismatches, 0u);
  EXPECT_EQ(b.read_mismatches, 0u);
  EXPECT_EQ(serial.validate_all_shards(), 0u);
  EXPECT_EQ(pooled.validate_all_shards(), 0u);
}

TEST(TraceService, EmptyTraceListIsRejected) {
  ServiceConfig cfg;
  cfg.traces = std::make_shared<std::vector<Trace>>();
  EXPECT_THROW(HeapService{cfg}, std::invalid_argument);
}

TEST(TraceService, TraceShardSizingBeyondWordRangeIsRejected) {
  // Regression: sizing the shard heap for (sessions-per-shard + 1) traces
  // used to multiply in 32-bit Word arithmetic, wrapping silently for
  // large recorded semispaces and undersizing the shard.
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.traffic.sessions = 16;
  auto traces = std::make_shared<std::vector<Trace>>();
  Trace big = trace_from_churn(7, 300);
  big.header.semispace_words = Word{1} << 30;  // 17 sessions' worth wraps
  traces->push_back(std::move(big));
  cfg.traces = std::move(traces);
  EXPECT_THROW(HeapService{cfg}, std::invalid_argument);
}

TEST(TraceService, ResilienceAndTracesAreMutuallyExclusive) {
  ServiceConfig cfg = trace_service_config(1);
  cfg.resilience.supervise = true;
  EXPECT_THROW(HeapService{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace hwgc
