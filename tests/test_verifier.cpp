// The verifier itself must be trustworthy: these tests corrupt a correctly
// collected heap in every way the verifier claims to detect and assert
// that it actually fails (a verifier that always says OK proves nothing).
#include <gtest/gtest.h>

#include "baselines/sequential_cheney.hpp"
#include "heap/object_model.hpp"
#include "heap/verifier.hpp"
#include "workloads/benchmarks.hpp"

namespace hwgc {
namespace {

struct Collected {
  Workload w;
  HeapSnapshot pre;
};

Collected collect_jlisp() {
  Collected c{make_benchmark(BenchmarkId::kJlisp, 0.05), {}};
  c.pre = HeapSnapshot::capture(*c.w.heap);
  SequentialCheney::collect(*c.w.heap);
  return c;
}

TEST(Verifier, AcceptsCorrectCollection) {
  Collected c = collect_jlisp();
  EXPECT_TRUE(verify_collection(c.pre, *c.w.heap).ok);
}

TEST(Verifier, SnapshotCoversExactlyTheReachableSet) {
  GraphPlan p;
  const auto a = p.add(2, 1);
  const auto b = p.add(1, 0);
  const auto dead = p.add(0, 3, /*garbage=*/true);
  (void)dead;
  p.link(a, 0, b);
  p.link(b, 0, a);  // cycle
  p.add_root(a);
  p.add_root(a);  // duplicate root
  Workload w = materialize(p);
  const HeapSnapshot snap = HeapSnapshot::capture(*w.heap);
  EXPECT_EQ(snap.objects.size(), 2u) << "garbage must not be snapshotted";
  EXPECT_EQ(snap.live_words, object_words(2, 1) + object_words(1, 0));
}

TEST(Verifier, DetectsCorruptedDataWord) {
  Collected c = collect_jlisp();
  // Corrupt one data word of the first copy that has one.
  Heap& heap = *c.w.heap;
  Addr cur = heap.layout().current_base();
  while (cur < heap.alloc_ptr()) {
    const Word attrs = heap.memory().load(attributes_addr(cur));
    if (delta_of(attrs) > 0) {
      const Addr victim = data_field_addr(cur, pi_of(attrs), 0);
      heap.memory().store(victim, heap.memory().load(victim) ^ 1);
      break;
    }
    cur += object_words(attrs);
  }
  EXPECT_FALSE(verify_collection(c.pre, heap).ok);
}

TEST(Verifier, DetectsUnforwardedLiveObject) {
  Collected c = collect_jlisp();
  // Clear the forwarded bit of one fromspace original.
  const Addr victim = c.pre.objects.front().addr;
  Heap& heap = *c.w.heap;
  const Word attrs = heap.memory().load(attributes_addr(victim));
  heap.memory().store(attributes_addr(victim), attrs & ~kForwardedBit);
  EXPECT_FALSE(verify_collection(c.pre, heap).ok);
}

TEST(Verifier, DetectsStaleOrWrongPointer) {
  Collected c = collect_jlisp();
  Heap& heap = *c.w.heap;
  // Find a copy with a non-null pointer field and misdirect it.
  Addr cur = heap.layout().current_base();
  while (cur < heap.alloc_ptr()) {
    const Word attrs = heap.memory().load(attributes_addr(cur));
    for (Word i = 0; i < pi_of(attrs); ++i) {
      if (heap.memory().load(pointer_field_addr(cur, i)) != kNullPtr) {
        heap.memory().store(pointer_field_addr(cur, i),
                            c.pre.objects.front().addr);  // fromspace!
        EXPECT_FALSE(verify_collection(c.pre, heap).ok);
        return;
      }
    }
    cur += object_words(attrs);
  }
  FAIL() << "workload should contain at least one pointer";
}

TEST(Verifier, DetectsNonBlackCopy) {
  Collected c = collect_jlisp();
  Heap& heap = *c.w.heap;
  const Addr first = heap.layout().current_base();
  const Word attrs = heap.memory().load(attributes_addr(first));
  heap.memory().store(attributes_addr(first), attrs & ~kBlackBit);
  EXPECT_FALSE(verify_collection(c.pre, heap).ok);
}

TEST(Verifier, DetectsWrongAllocPtr) {
  Collected c = collect_jlisp();
  c.w.heap->set_alloc_ptr(c.w.heap->alloc_ptr() + 4);
  EXPECT_FALSE(verify_collection(c.pre, *c.w.heap).ok);
}

TEST(Verifier, DetectsUnforwardedRoot) {
  Collected c = collect_jlisp();
  c.w.heap->roots()[0] = c.pre.roots[0];  // point back into fromspace
  EXPECT_FALSE(verify_collection(c.pre, *c.w.heap).ok);
}

TEST(Verifier, DetectsMissedFlip) {
  Collected c = collect_jlisp();
  c.w.heap->flip();  // undo the collector's flip
  EXPECT_FALSE(verify_collection(c.pre, *c.w.heap).ok);
}

TEST(Verifier, DenseModeRejectsHolesButLooseModeAccepts) {
  // Build a fake "collection with a hole": collect, then move the alloc
  // pointer past a gap and append a dummy copy... simpler: verify a
  // correct dense collection under both modes.
  Collected c = collect_jlisp();
  EXPECT_TRUE(verify_collection(c.pre, *c.w.heap, {.require_dense = true}).ok);
  EXPECT_TRUE(
      verify_collection(c.pre, *c.w.heap, {.require_dense = false}).ok);
}

}  // namespace
}  // namespace hwgc
