// The verifier itself must be trustworthy: these tests corrupt a correctly
// collected heap in every way the verifier claims to detect and assert
// that it actually fails (a verifier that always says OK proves nothing).
#include <gtest/gtest.h>

#include "baselines/sequential_cheney.hpp"
#include "heap/object_model.hpp"
#include "heap/verifier.hpp"
#include "workloads/benchmarks.hpp"

namespace hwgc {
namespace {

struct Collected {
  Workload w;
  HeapSnapshot pre;
};

Collected collect_jlisp() {
  Collected c{make_benchmark(BenchmarkId::kJlisp, 0.05), {}};
  c.pre = HeapSnapshot::capture(*c.w.heap);
  SequentialCheney::collect(*c.w.heap);
  return c;
}

TEST(Verifier, AcceptsCorrectCollection) {
  Collected c = collect_jlisp();
  EXPECT_TRUE(verify_collection(c.pre, *c.w.heap).ok);
}

TEST(Verifier, SnapshotCoversExactlyTheReachableSet) {
  GraphPlan p;
  const auto a = p.add(2, 1);
  const auto b = p.add(1, 0);
  const auto dead = p.add(0, 3, /*garbage=*/true);
  (void)dead;
  p.link(a, 0, b);
  p.link(b, 0, a);  // cycle
  p.add_root(a);
  p.add_root(a);  // duplicate root
  Workload w = materialize(p);
  const HeapSnapshot snap = HeapSnapshot::capture(*w.heap);
  EXPECT_EQ(snap.objects.size(), 2u) << "garbage must not be snapshotted";
  EXPECT_EQ(snap.live_words, object_words(2, 1) + object_words(1, 0));
}

TEST(Verifier, DetectsCorruptedDataWord) {
  Collected c = collect_jlisp();
  // Corrupt one data word of the first copy that has one.
  Heap& heap = *c.w.heap;
  Addr cur = heap.layout().current_base();
  while (cur < heap.alloc_ptr()) {
    const Word attrs = heap.memory().load(attributes_addr(cur));
    if (delta_of(attrs) > 0) {
      const Addr victim = data_field_addr(cur, pi_of(attrs), 0);
      heap.memory().store(victim, heap.memory().load(victim) ^ 1);
      break;
    }
    cur += object_words(attrs);
  }
  EXPECT_FALSE(verify_collection(c.pre, heap).ok);
}

TEST(Verifier, DetectsUnforwardedLiveObject) {
  Collected c = collect_jlisp();
  // Clear the forwarded bit of one fromspace original.
  const Addr victim = c.pre.objects.front().addr;
  Heap& heap = *c.w.heap;
  const Word attrs = heap.memory().load(attributes_addr(victim));
  heap.memory().store(attributes_addr(victim), attrs & ~kForwardedBit);
  EXPECT_FALSE(verify_collection(c.pre, heap).ok);
}

TEST(Verifier, DetectsStaleOrWrongPointer) {
  Collected c = collect_jlisp();
  Heap& heap = *c.w.heap;
  // Find a copy with a non-null pointer field and misdirect it.
  Addr cur = heap.layout().current_base();
  while (cur < heap.alloc_ptr()) {
    const Word attrs = heap.memory().load(attributes_addr(cur));
    for (Word i = 0; i < pi_of(attrs); ++i) {
      if (heap.memory().load(pointer_field_addr(cur, i)) != kNullPtr) {
        heap.memory().store(pointer_field_addr(cur, i),
                            c.pre.objects.front().addr);  // fromspace!
        EXPECT_FALSE(verify_collection(c.pre, heap).ok);
        return;
      }
    }
    cur += object_words(attrs);
  }
  FAIL() << "workload should contain at least one pointer";
}

TEST(Verifier, DetectsNonBlackCopy) {
  Collected c = collect_jlisp();
  Heap& heap = *c.w.heap;
  const Addr first = heap.layout().current_base();
  const Word attrs = heap.memory().load(attributes_addr(first));
  heap.memory().store(attributes_addr(first), attrs & ~kBlackBit);
  EXPECT_FALSE(verify_collection(c.pre, heap).ok);
}

TEST(Verifier, DetectsWrongAllocPtr) {
  Collected c = collect_jlisp();
  c.w.heap->set_alloc_ptr(c.w.heap->alloc_ptr() + 4);
  EXPECT_FALSE(verify_collection(c.pre, *c.w.heap).ok);
}

TEST(Verifier, DetectsUnforwardedRoot) {
  Collected c = collect_jlisp();
  c.w.heap->roots()[0] = c.pre.roots[0];  // point back into fromspace
  EXPECT_FALSE(verify_collection(c.pre, *c.w.heap).ok);
}

TEST(Verifier, DetectsMissedFlip) {
  Collected c = collect_jlisp();
  c.w.heap->flip();  // undo the collector's flip
  EXPECT_FALSE(verify_collection(c.pre, *c.w.heap).ok);
}

// ---------------------------------------------------------------------------
// Four targeted corruptions, each asserting the SPECIFIC check fires (the
// coarse !ok tests above can pass for the wrong reason).
// ---------------------------------------------------------------------------

bool has_error(const VerifyResult& res, const std::string& needle) {
  for (const auto& e : res.errors) {
    if (e.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(Verifier, DroppedObjectNamesTheEvacuationCheck) {
  Collected c = collect_jlisp();
  Heap& heap = *c.w.heap;
  const Addr victim = c.pre.objects.front().addr;
  const Word attrs = heap.memory().load(attributes_addr(victim));
  heap.memory().store(attributes_addr(victim), attrs & ~kForwardedBit);
  const VerifyResult res = verify_collection(c.pre, heap);
  ASSERT_FALSE(res.ok);
  EXPECT_TRUE(has_error(res, "was not evacuated")) << res.summary();
}

TEST(Verifier, SwappedPointerFieldsNameThePointerCheck) {
  // R has two pointer fields referring to two DIFFERENT children; swapping
  // them in the copy keeps every pointer valid-looking but misdirected.
  GraphPlan p;
  const auto r = p.add(2, 1);
  const auto x = p.add(0, 2);
  const auto y = p.add(0, 3);
  p.link(r, 0, x);
  p.link(r, 1, y);
  p.add_root(r);
  Workload w = materialize(p);
  Heap& heap = *w.heap;
  const HeapSnapshot pre = HeapSnapshot::capture(heap);
  SequentialCheney::collect(heap);

  const Addr r_copy = heap.memory().load(link_addr(pre.objects.front().addr));
  const Addr f0 = heap.memory().load(pointer_field_addr(r_copy, 0));
  const Addr f1 = heap.memory().load(pointer_field_addr(r_copy, 1));
  ASSERT_NE(f0, f1);
  heap.memory().store(pointer_field_addr(r_copy, 0), f1);
  heap.memory().store(pointer_field_addr(r_copy, 1), f0);
  const VerifyResult res = verify_collection(pre, heap);
  ASSERT_FALSE(res.ok);
  EXPECT_TRUE(has_error(res, "pointer field")) << res.summary();
  EXPECT_FALSE(has_error(res, "stale fromspace"))
      << "both targets are tospace copies";
}

TEST(Verifier, StaleFromspacePointerNamesTheStaleCheck) {
  Collected c = collect_jlisp();
  Heap& heap = *c.w.heap;
  // Redirect some copy's pointer field back into the evacuated space.
  Addr cur = heap.layout().current_base();
  while (cur < heap.alloc_ptr()) {
    const Word attrs = heap.memory().load(attributes_addr(cur));
    if (pi_of(attrs) > 0) {
      heap.memory().store(pointer_field_addr(cur, 0),
                          c.pre.objects.front().addr);
      const VerifyResult res = verify_collection(c.pre, heap);
      ASSERT_FALSE(res.ok);
      EXPECT_TRUE(has_error(res, "stale fromspace pointer")) << res.summary();
      return;
    }
    cur += object_words(attrs);
  }
  FAIL() << "workload should contain at least one pointer field";
}

TEST(Verifier, CompactionHoleNamesTheDenseCheck) {
  // a -> b, collected correctly, then b's copy is slid 2 words up with all
  // metadata (forwarding link, a's pointer field, alloc_ptr) adjusted, so
  // the ONLY remaining defect is the hole in the dense packing.
  GraphPlan p;
  const auto a = p.add(1, 1);
  const auto b = p.add(0, 2);
  p.link(a, 0, b);
  p.add_root(a);
  Workload w = materialize(p);
  Heap& heap = *w.heap;
  const HeapSnapshot pre = HeapSnapshot::capture(heap);
  SequentialCheney::collect(heap);
  ASSERT_TRUE(verify_collection(pre, heap).ok);

  const Addr old_b = pre.objects.back().addr;
  ASSERT_EQ(pre.objects.back().pi, 0u);
  const Addr b_copy = heap.memory().load(link_addr(old_b));
  const Word b_words = object_words(heap.memory().load(attributes_addr(b_copy)));
  // Slide the copy up by 2 words (highest word first: ranges overlap).
  for (Word i = b_words; i-- > 0;) {
    heap.memory().store(b_copy + 2 + i, heap.memory().load(b_copy + i));
  }
  heap.memory().store(link_addr(old_b), b_copy + 2);
  const Addr a_copy = heap.memory().load(link_addr(pre.objects.front().addr));
  ASSERT_EQ(heap.memory().load(pointer_field_addr(a_copy, 0)), b_copy);
  heap.memory().store(pointer_field_addr(a_copy, 0), b_copy + 2);
  heap.set_alloc_ptr(heap.alloc_ptr() + 2);

  const VerifyResult res = verify_collection(pre, heap);
  ASSERT_FALSE(res.ok);
  EXPECT_TRUE(has_error(res, "compaction hole")) << res.summary();
  EXPECT_FALSE(has_error(res, "pointer field"))
      << "pointers were consistently adjusted; only the hole may fire";
  // The loose mode tolerates exactly this kind of fragmentation.
  EXPECT_TRUE(verify_collection(pre, heap, {.require_dense = false}).ok);
}

TEST(Verifier, DenseModeRejectsHolesButLooseModeAccepts) {
  // Build a fake "collection with a hole": collect, then move the alloc
  // pointer past a gap and append a dummy copy... simpler: verify a
  // correct dense collection under both modes.
  Collected c = collect_jlisp();
  EXPECT_TRUE(verify_collection(c.pre, *c.w.heap, {.require_dense = true}).ok);
  EXPECT_TRUE(
      verify_collection(c.pre, *c.w.heap, {.require_dense = false}).ok);
}

}  // namespace
}  // namespace hwgc
