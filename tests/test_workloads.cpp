// Workload substrate: graph plans, materialization and the eight
// benchmark-shape generators.
#include <gtest/gtest.h>

#include <stdexcept>
#include <unordered_set>

#include "heap/object_model.hpp"
#include "runtime/runtime.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/mutator.hpp"
#include "workloads/random_graph.hpp"

namespace hwgc {
namespace {

TEST(GraphPlan, CountsLiveAndGarbage) {
  GraphPlan p;
  p.add(2, 3);
  p.add(0, 0, /*garbage=*/true);
  p.add(1, 1);
  EXPECT_EQ(p.live_nodes(), 2u);
  EXPECT_EQ(p.live_words(), object_words(2, 3) + object_words(1, 1));
  EXPECT_EQ(p.total_words(), p.live_words() + object_words(0, 0));
}

TEST(Materialize, HeapHoldsPlanExactly) {
  GraphPlan p;
  const auto a = p.add(2, 1);
  const auto b = p.add(0, 2);
  p.link(a, 1, b);
  p.add_root(a);
  Workload w = materialize(p);
  ASSERT_EQ(w.node_addrs.size(), 2u);
  const Addr aa = w.node_addrs[a];
  const Addr bb = w.node_addrs[b];
  EXPECT_EQ(w.heap->pi(aa), 2u);
  EXPECT_EQ(w.heap->pointer(aa, 0), kNullPtr);
  EXPECT_EQ(w.heap->pointer(aa, 1), bb);
  ASSERT_EQ(w.heap->roots().size(), 1u);
  EXPECT_EQ(w.heap->roots()[0], aa);
  EXPECT_EQ(w.live_words, p.live_words());
}

TEST(Materialize, HeapFactorSizesSemispace) {
  GraphPlan p;
  p.add(0, 100);
  p.add_root(0);
  Workload w2 = materialize(p, 2.0);
  Workload w8 = materialize(p, 8.0);
  EXPECT_GE(w2.heap->layout().semispace_words(), 2 * p.live_words());
  EXPECT_GE(w8.heap->layout().semispace_words(), 8 * p.live_words());
  EXPECT_GT(w8.heap->layout().semispace_words(),
            w2.heap->layout().semispace_words());
}

TEST(Benchmarks, AllNamesRoundTrip) {
  EXPECT_EQ(all_benchmarks().size(), 8u);
  std::unordered_set<std::string_view> names;
  for (BenchmarkId id : all_benchmarks()) names.insert(benchmark_name(id));
  EXPECT_EQ(names.size(), 8u);
  EXPECT_TRUE(names.contains("compress"));
  EXPECT_TRUE(names.contains("search"));
  EXPECT_TRUE(names.contains("cup"));
}

TEST(Benchmarks, DeterministicForSeed) {
  for (BenchmarkId id : all_benchmarks()) {
    const GraphPlan a = make_benchmark_plan(id, 0.01, 7);
    const GraphPlan b = make_benchmark_plan(id, 0.01, 7);
    ASSERT_EQ(a.nodes.size(), b.nodes.size()) << benchmark_name(id);
    ASSERT_EQ(a.edges.size(), b.edges.size());
    for (std::size_t i = 0; i < a.nodes.size(); ++i) {
      ASSERT_EQ(a.nodes[i].pi, b.nodes[i].pi);
      ASSERT_EQ(a.nodes[i].delta, b.nodes[i].delta);
    }
  }
}

TEST(Benchmarks, ScaleGrowsLiveSet) {
  for (BenchmarkId id : all_benchmarks()) {
    const GraphPlan small = make_benchmark_plan(id, 0.01);
    const GraphPlan large = make_benchmark_plan(id, 0.05);
    EXPECT_GT(large.live_words(), small.live_words()) << benchmark_name(id);
  }
}

TEST(Benchmarks, EdgesRespectPointerAreas) {
  for (BenchmarkId id : all_benchmarks()) {
    const GraphPlan p = make_benchmark_plan(id, 0.02);
    for (const auto& e : p.edges) {
      ASSERT_LT(e.src, p.nodes.size()) << benchmark_name(id);
      ASSERT_LT(e.dst, p.nodes.size());
      ASSERT_LT(e.field, p.nodes[e.src].pi)
          << benchmark_name(id) << ": edge into a non-pointer field";
    }
    for (const auto& n : p.nodes) {
      ASSERT_LE(n.pi, kMaxPi) << benchmark_name(id);
      ASSERT_LE(n.delta, kMaxDelta);
    }
    ASSERT_FALSE(p.roots.empty()) << benchmark_name(id);
  }
}

TEST(Benchmarks, RejectsNonPositiveScale) {
  EXPECT_THROW(make_benchmark_plan(BenchmarkId::kDb, 0.0),
               std::invalid_argument);
  EXPECT_THROW(make_benchmark_plan(BenchmarkId::kDb, -1.0),
               std::invalid_argument);
}

// ShadowMutator::Config validation: impossible configurations must throw
// at construction (or on the first step against an undersized heap), not
// corrupt headers or die whenever the rng happens to draw the bad shape.
TEST(ShadowMutatorConfig, RejectsZeroTargetLive) {
  ShadowMutator::Config cfg;
  cfg.target_live = 0;
  EXPECT_THROW(ShadowMutator{cfg}, std::invalid_argument);
}

TEST(ShadowMutatorConfig, RejectsShapesBeyondHeaderEncoding) {
  ShadowMutator::Config pi_too_big;
  pi_too_big.max_pi = kMaxPi + 1;
  EXPECT_THROW(ShadowMutator{pi_too_big}, std::invalid_argument);

  ShadowMutator::Config delta_too_big;
  delta_too_big.max_delta = kMaxDelta + 1;
  EXPECT_THROW(ShadowMutator{delta_too_big}, std::invalid_argument);

  ShadowMutator::Config at_limit;
  at_limit.max_pi = kMaxPi;
  at_limit.max_delta = kMaxDelta;
  EXPECT_NO_THROW(ShadowMutator{at_limit});
}

TEST(ShadowMutatorConfig, RejectsShapeThatCanNeverFitSemispace) {
  Runtime rt(64);
  ShadowMutator::Config cfg;
  cfg.max_pi = 100;
  cfg.max_delta = 200;  // max-shape object: 302 words, far over capacity
  ShadowMutator mut(cfg);
  EXPECT_THROW(mut.step(rt), std::invalid_argument);

  Runtime big(1 << 14);
  ShadowMutator ok(cfg);
  EXPECT_NO_THROW(ok.run(big, 50));
}

TEST(ShadowMutatorProbe, ReadsMatchShadowAcrossCollections) {
  Runtime rt(2200);  // small semispace: probes span collection cycles
  ShadowMutator mut({.seed = 3, .target_live = 48});
  std::size_t words_read = 0;
  std::size_t mismatches = 0;
  for (int i = 0; i < 900; ++i) {
    mut.run(rt, 10);
    words_read += mut.probe(rt, &mismatches);
  }
  EXPECT_GE(rt.gc_history().size(), 2u)
      << "probes must have spanned collection cycles";
  EXPECT_GT(words_read, 0u);
  EXPECT_EQ(mismatches, 0u);
}

TEST(ShadowMutatorProbe, ProbeWithoutMismatchPointerIsSafe) {
  Runtime rt(1 << 14);
  ShadowMutator mut({.seed = 9, .target_live = 16});
  EXPECT_EQ(mut.probe(rt), 0u) << "nothing rooted yet: nothing to read";
  mut.run(rt, 200);
  (void)mut.probe(rt);  // null mismatch counter must not crash
}

TEST(RandomGraph, DeterministicAndInBounds) {
  const GraphPlan a = make_random_plan(3);
  const GraphPlan b = make_random_plan(3);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (const auto& e : a.edges) {
    ASSERT_LT(e.field, a.nodes[e.src].pi);
    ASSERT_FALSE(a.nodes[e.dst].garbage) << "edges must target live nodes";
  }
  const GraphPlan c = make_random_plan(4);
  EXPECT_NE(a.edges.size(), c.edges.size());
}

}  // namespace
}  // namespace hwgc
